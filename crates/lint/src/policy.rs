//! Per-crate policy tiers: which rules apply to which workspace paths.
//!
//! Paths are workspace-relative with `/` separators (the walker
//! normalizes). Three tiers exist:
//!
//! * **deterministic** crates — everything that executes inside the
//!   simulation and therefore feeds the bit-determinism oracle;
//! * **recovery-critical** modules — code on the restart/replay path,
//!   where an injected fault must degrade into `Err`, not an abort;
//! * **exempt** surfaces — `crates/bench` (wall-clock measurement and
//!   thread fan-out are its job) and `src/cli.rs` (process boundary).

/// Crates whose `src/` trees must be deterministic (rule D01, and the
/// scope of D02's strictest reading).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "sim",
    "net",
    "mpi",
    "trace",
    "group",
    "core",
    "workloads",
    "chaos",
];

/// Protocol crates whose public mutating API must not hide behind
/// `#[allow(dead_code)]` (rule D04).
pub const PROTOCOL_CRATES: &[&str] = &["core", "mpi", "group", "chaos"];

/// Modules on the recovery path (rules D03, D03-T roots, P02). The
/// executor's shard/merge module rides along: a panic in the cross-shard
/// merge would take down every group at once, so it must stay free of
/// unwrap/expect/unchecked indexing like the restart path proper.
pub const RECOVERY_CRITICAL: &[&str] = &[
    "crates/core/src/restart.rs",
    "crates/core/src/msglog.rs",
    "crates/core/src/ctrlplane.rs",
    "crates/net/src/ckptstore.rs",
    "crates/net/src/restore.rs",
    "crates/chaos/src/engine.rs",
    "crates/sim/src/shard.rs",
];

/// Crates the transitive panic-reachability pass (D03-T) propagates
/// through. These hold the protocol data/control plane, where an injected
/// fault must degrade into a typed error. Calls that leave this set (into
/// the simulation kernel, group math, workload models, …) are trusted
/// boundaries: a panic there is a simulator bug caught by the chaos
/// harness, not a recoverable runtime fault. See DESIGN.md §9.
pub const D03T_SCOPE_CRATES: &[&str] = &["core", "net", "mpi", "chaos"];

/// Error types whose loss the error-flow rules (E01/E02/E03) never allow:
/// these carry recovery-path fault information.
pub const PROTOCOL_ERROR_TYPES: &[&str] = &["RecoveryError", "StorageError"];

/// The shard-isolation boundary (rule S01): the module defining the
/// per-shard timer heaps and the merge/global-sequence order. Types
/// declared here are shard-local state.
pub const SHARD_BOUNDARY: &str = "crates/sim/src/shard.rs";

/// Files allowed to touch shard-local state: the boundary itself and the
/// executor's merge loop (which owns the `.shards` arena and the
/// conservative-window drain).
pub const SHARD_MERGERS: &[&str] = &["crates/sim/src/shard.rs", "crates/sim/src/executor.rs"];

/// Boundary types that are deliberately exported read-only (merged
/// counters, no timer state).
pub const SHARD_EXPORTED: &[&str] = &["SimStats"];

/// Crates inside which S01 polices shard-local reachability: the
/// simulation kernel and the MPI layer routed onto it.
pub const SHARD_SCOPE_CRATES: &[&str] = &["sim", "mpi"];

/// The rule set in force for one file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Policy {
    /// D01: no iteration over hash-ordered containers.
    pub d01: bool,
    /// D02: no wall-clock / OS entropy / threads / env.
    pub d02: bool,
    /// D03: no unwrap/expect/panic/unchecked indexing.
    pub d03: bool,
    /// D04: no dead-code-suppressed pub fns taking `&mut` state.
    pub d04: bool,
    /// E01/E02/E03: no discarded protocol `Result`s (workspace passes).
    pub e: bool,
}

fn crate_of(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

/// Resolve the policy for a workspace-relative path.
pub fn policy_for(rel: &str) -> Policy {
    let cr = crate_of(rel);
    let d02_exempt = rel.starts_with("crates/bench/") || rel == "src/cli.rs";
    Policy {
        d01: cr.is_some_and(|c| DETERMINISTIC_CRATES.contains(&c)),
        d02: !d02_exempt,
        d03: RECOVERY_CRITICAL.contains(&rel),
        d04: cr.is_some_and(|c| PROTOCOL_CRATES.contains(&c)),
        e: !d02_exempt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_resolve_as_documented() {
        let p = policy_for("crates/sim/src/executor.rs");
        assert!(p.d01 && p.d02 && !p.d03 && !p.d04);

        // The shard/merge module: deterministic (gcr-sim is a D01 crate)
        // AND panic-free (D03) — every group shares one merge loop.
        let p = policy_for("crates/sim/src/shard.rs");
        assert!(p.d01 && p.d02 && p.d03 && !p.d04);

        let p = policy_for("crates/core/src/restart.rs");
        assert!(p.d01 && p.d02 && p.d03 && p.d04);

        // The durable checkpoint store is deterministic (gcr-net) AND on
        // the recovery path (restart generation selection + validation),
        // but gcr-net is not a protocol-API tier.
        let p = policy_for("crates/net/src/ckptstore.rs");
        assert!(p.d01 && p.d02 && p.d03 && !p.d04);

        // The replicated restore backend serves restart reads from peer
        // memory: replica exhaustion must degrade typed, never panic.
        let p = policy_for("crates/net/src/restore.rs");
        assert!(p.d01 && p.d02 && p.d03 && !p.d04);

        let p = policy_for("crates/bench/src/sweep.rs");
        assert!(!p.d01 && !p.d02 && !p.d03 && !p.d04);

        let p = policy_for("src/cli.rs");
        assert!(!p.d01 && !p.d02);

        let p = policy_for("src/bin/gcrsim.rs");
        assert!(!p.d01 && p.d02);

        let p = policy_for("crates/json/src/lib.rs");
        assert!(!p.d01 && p.d02 && !p.d03 && !p.d04);
    }
}
