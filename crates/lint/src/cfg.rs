//! Structured control-flow trees over the token stream.
//!
//! The flow-sensitive passes (P10 phase-order checking, D10 determinism
//! taint) need more than a flat token range: they must know which
//! statements are alternatives (`if`/`else`, `match` arms) and which
//! repeat (`for`/`while`/`loop`). This module builds a *structured* CFG —
//! a tree of [`Cfg`] nodes over token ranges — good enough for a worklist
//! walk without parsing full Rust.
//!
//! Approximations, all deliberate and all conservative for our rules:
//!
//! * Control flow nested inside an *expression* (a closure body passed to
//!   an adaptor, a `match` inside a call argument) is linearized into the
//!   enclosing [`Cfg::Stmt`] range — every token is still visited, just
//!   without branch sensitivity.
//! * A struct literal's braces parse as a block; its field expressions
//!   are then visited as straight-line code, which is what they are.
//! * `break`/`continue`/`?`/early `return` do not cut edges; a loop body
//!   is treated as executing zero or more complete iterations.

use crate::lexer::{Tok, TokKind};

/// One node of the structured control-flow tree. Token ranges are
/// half-open `[lo, hi)` indices into the lexed token stream.
#[derive(Debug, Clone)]
pub enum Cfg {
    /// Straight-line tokens (may span several statements).
    Stmt(usize, usize),
    /// Children execute in order.
    Seq(Vec<Cfg>),
    /// Exactly one child executes (if/else chains, match arms). An
    /// `if` without `else` carries an empty `Seq` alternative.
    Branch(Vec<Cfg>),
    /// The child executes zero or more times.
    Loop(Box<Cfg>),
}

/// Build the structured CFG for the token range `[lo, hi)` (typically a
/// function body, braces excluded).
pub fn build(toks: &[Tok], lo: usize, hi: usize) -> Cfg {
    Cfg::Seq(parse_seq(toks, lo, hi))
}

fn is_ident(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

/// Index of the bracket matching the opener at `open`, or `hi` if
/// unclosed (truncated input). Counts all three bracket kinds.
pub fn matching(toks: &[Tok], open: usize, hi: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => return open,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < hi {
        let t = toks[i].text.as_str();
        if t == o {
            depth += 1;
        } else if t == c {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    hi
}

/// Scan forward from `from` for a `{` at bracket depth 0 (only `(`/`[`
/// depth counted — a depth-0 `{` *is* the block we are looking for).
fn block_open(toks: &[Tok], from: usize, hi: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = from;
    while i < hi {
        match toks[i].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// After `if let` / `while let`, skip the pattern: advance past the
/// top-level `=` (all bracket kinds counted, so struct patterns and
/// or-patterns do not confuse it).
fn skip_let_pattern(toks: &[Tok], from: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < hi {
        match toks[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "=" if depth == 0 => {
                // `==` never terminates a pattern; `=` does.
                let twin = toks.get(i + 1).is_some_and(|t| t.text == "=");
                if !twin {
                    return i + 1;
                }
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    hi
}

/// Parse `[lo, hi)` as a statement sequence.
fn parse_seq(toks: &[Tok], lo: usize, hi: usize) -> Vec<Cfg> {
    let mut out = Vec::new();
    let mut flat = lo; // start of the current straight-line run
    let mut i = lo;
    let mut depth = 0i32; // ( / [ nesting — keywords inside are expression-level
    while i < hi {
        let t = &toks[i];
        match t.text.as_str() {
            "(" | "[" => {
                depth += 1;
                i += 1;
                continue;
            }
            ")" | "]" => {
                depth -= 1;
                i += 1;
                continue;
            }
            _ => {}
        }
        if depth > 0 || t.kind != TokKind::Ident && t.text != "{" {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "if" => {
                flush(&mut out, flat, i);
                let (node, next) = parse_if(toks, i, hi);
                out.push(node);
                i = next;
                flat = i;
            }
            "match" => {
                flush(&mut out, flat, i);
                let (node, next) = parse_match(toks, i, hi);
                out.push(node);
                i = next;
                flat = i;
            }
            "loop" => {
                flush(&mut out, flat, i);
                let Some(open) = block_open(toks, i + 1, hi) else {
                    i += 1;
                    continue;
                };
                let close = matching(toks, open, hi);
                out.push(Cfg::Loop(Box::new(Cfg::Seq(parse_seq(
                    toks,
                    open + 1,
                    close,
                )))));
                i = close + 1;
                flat = i;
            }
            "while" => {
                flush(&mut out, flat, i);
                let mut c = i + 1;
                if is_ident(toks, c, "let") {
                    c = skip_let_pattern(toks, c + 1, hi);
                }
                let Some(open) = block_open(toks, c, hi) else {
                    i += 1;
                    continue;
                };
                let close = matching(toks, open, hi);
                let mut body = vec![Cfg::Stmt(c, open)]; // the condition
                body.extend(parse_seq(toks, open + 1, close));
                out.push(Cfg::Loop(Box::new(Cfg::Seq(body))));
                i = close + 1;
                flat = i;
            }
            "for" => {
                flush(&mut out, flat, i);
                // pattern `in` iterable `{` body `}`
                let mut c = i + 1;
                let mut pdepth = 0i32;
                while c < hi {
                    match toks[c].text.as_str() {
                        "(" | "[" | "{" => pdepth += 1,
                        ")" | "]" | "}" => pdepth -= 1,
                        "in" if pdepth == 0 && toks[c].kind == TokKind::Ident => break,
                        _ => {}
                    }
                    c += 1;
                }
                let Some(open) = block_open(toks, c, hi) else {
                    i += 1;
                    continue;
                };
                let close = matching(toks, open, hi);
                out.push(Cfg::Stmt(c, open)); // the iterable expression
                out.push(Cfg::Loop(Box::new(Cfg::Seq(parse_seq(
                    toks,
                    open + 1,
                    close,
                )))));
                i = close + 1;
                flat = i;
            }
            "{" => {
                flush(&mut out, flat, i);
                let close = matching(toks, i, hi);
                out.push(Cfg::Seq(parse_seq(toks, i + 1, close)));
                i = close + 1;
                flat = i;
            }
            _ => {
                i += 1;
            }
        }
    }
    flush(&mut out, flat, hi.min(toks.len()));
    out
}

fn flush(out: &mut Vec<Cfg>, lo: usize, hi: usize) {
    if lo < hi {
        out.push(Cfg::Stmt(lo, hi));
    }
}

/// Parse an `if` (possibly `if let`) chain starting at the `if` token.
/// Returns `Seq([cond, Branch([then, else])])` and the index after the
/// chain.
fn parse_if(toks: &[Tok], at: usize, hi: usize) -> (Cfg, usize) {
    let mut c = at + 1;
    if is_ident(toks, c, "let") {
        c = skip_let_pattern(toks, c + 1, hi);
    }
    let Some(open) = block_open(toks, c, hi) else {
        return (Cfg::Stmt(at, (at + 1).min(hi)), (at + 1).min(hi));
    };
    let close = matching(toks, open, hi);
    let cond = Cfg::Stmt(c, open);
    let then = Cfg::Seq(parse_seq(toks, open + 1, close));
    let mut next = close + 1;
    let alt = if is_ident(toks, next, "else") {
        if is_ident(toks, next + 1, "if") {
            let (node, after) = parse_if(toks, next + 1, hi);
            next = after;
            node
        } else if let Some(eopen) = block_open(toks, next + 1, hi) {
            let eclose = matching(toks, eopen, hi);
            next = eclose + 1;
            Cfg::Seq(parse_seq(toks, eopen + 1, eclose))
        } else {
            Cfg::Seq(Vec::new())
        }
    } else {
        Cfg::Seq(Vec::new())
    };
    (Cfg::Seq(vec![cond, Cfg::Branch(vec![then, alt])]), next)
}

/// Parse a `match` starting at the `match` token. Returns
/// `Seq([scrutinee, Branch(arms)])` and the index after the match.
fn parse_match(toks: &[Tok], at: usize, hi: usize) -> (Cfg, usize) {
    let Some(open) = block_open(toks, at + 1, hi) else {
        return (Cfg::Stmt(at, (at + 1).min(hi)), (at + 1).min(hi));
    };
    let close = matching(toks, open, hi);
    let scrutinee = Cfg::Stmt(at + 1, open);
    let mut arms = Vec::new();
    let mut i = open + 1;
    while i < close {
        // Skip the pattern (and guard) up to the `=>` at depth 0.
        let mut depth = 0i32;
        let mut arrow = None;
        let mut j = i;
        while j < close {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth == 0 && toks.get(j + 1).is_some_and(|t| t.text == ">") => {
                    arrow = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        let body_start = arrow + 2;
        if body_start >= close {
            break;
        }
        if toks[body_start].text == "{" {
            let bclose = matching(toks, body_start, close);
            arms.push(Cfg::Seq(parse_seq(toks, body_start + 1, bclose)));
            i = bclose + 1;
            if toks.get(i).is_some_and(|t| t.text == ",") {
                i += 1;
            }
        } else {
            // Expression arm: runs to the `,` at depth 0 (or the match end).
            let mut depth = 0i32;
            let mut k = body_start;
            while k < close {
                match toks[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            arms.push(Cfg::Seq(parse_seq(toks, body_start, k)));
            i = (k + 1).min(close);
        }
    }
    if arms.is_empty() {
        arms.push(Cfg::Seq(Vec::new()));
    }
    (Cfg::Seq(vec![scrutinee, Cfg::Branch(arms)]), close + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn shape(c: &Cfg) -> String {
        match c {
            Cfg::Stmt(..) => "S".to_string(),
            Cfg::Seq(v) => format!("[{}]", v.iter().map(shape).collect::<Vec<_>>().join(" ")),
            Cfg::Branch(v) => format!("B({})", v.iter().map(shape).collect::<Vec<_>>().join(" ")),
            Cfg::Loop(b) => format!("L{}", shape(b)),
        }
    }

    #[test]
    fn if_else_becomes_a_branch_with_the_condition_before_it() {
        let lx = lex("fn f() { let x = 1; if a { g(); } else { h(); } tail(); }");
        let cfg = build(&lx.toks, 0, lx.toks.len());
        let s = shape(&cfg);
        assert!(s.contains("B([S] [S])"), "shape: {s}");
    }

    #[test]
    fn match_arms_become_alternatives() {
        let lx = lex("fn f() { match x { Ok(v) => g(v), Err(_) => { h(); } } }");
        let cfg = build(&lx.toks, 0, lx.toks.len());
        let s = shape(&cfg);
        assert!(s.contains("B([S] [S])"), "shape: {s}");
    }

    #[test]
    fn loops_wrap_their_bodies() {
        let lx = lex("fn f() { for e in v { g(e); } while let Some(x) = it.next() { h(x); } }");
        let cfg = build(&lx.toks, 0, lx.toks.len());
        let s = shape(&cfg);
        assert_eq!(s.matches('L').count(), 2, "shape: {s}");
    }

    #[test]
    fn expression_level_keywords_stay_linear() {
        // The `match` lives inside call parens: no Branch at statement level.
        let lx = lex("fn f() { g(match x { A => 1, B => 2 }); }");
        let cfg = build(&lx.toks, 0, lx.toks.len());
        let s = shape(&cfg);
        assert!(!s.contains('B'), "shape: {s}");
    }

    #[test]
    fn else_if_chains_nest() {
        let lx = lex("fn f() { if a { g(); } else if b { h(); } else { k(); } }");
        let cfg = build(&lx.toks, 0, lx.toks.len());
        let s = shape(&cfg);
        // Outer branch's alternative is itself a cond+branch sequence.
        assert!(
            s.contains("B([S] [S B([S] [S])])") || s.contains("B("),
            "shape: {s}"
        );
    }
}
