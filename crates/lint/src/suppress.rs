//! Inline suppressions: `// gcr-lint: allow(D01) <reason>`.
//!
//! A suppression on its own line covers the next code line; a trailing
//! suppression covers its own line. Several rules may be listed
//! (`allow(D01,D03)`). Every suppression must carry a justification, and
//! a suppression that suppresses nothing is itself a finding (W00) — the
//! analyzer refuses to let dead waivers accumulate.
//!
//! The transitive pass (D03-T) adds a second, file-scoped form:
//! `// gcr-lint: trust(D03-T) <reason>`. It certifies that every panic
//! site in the file is invariant-guarded (validated per-rank arrays and
//! the like), so none of them propagate to recovery-critical callers.
//! Direct D03 findings in recovery-critical files are *not* affected —
//! trust only removes the file from the transitive panic set.

use crate::lexer::Lexed;
use crate::report::{Finding, Rule, Status};

/// One parsed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment sits on.
    pub line: usize,
    /// Line whose findings it waives.
    pub applies_to: usize,
    /// Rules waived.
    pub rules: Vec<Rule>,
    /// Justification text after the `allow(...)`.
    pub reason: String,
}

/// One file-scoped `trust(D03-T)` directive.
#[derive(Debug, Clone)]
pub struct Trust {
    /// Line the directive sits on.
    pub line: usize,
    /// Justification text after the `trust(...)`.
    pub reason: String,
}

/// All waivers of one file, with usage tracking shared between the local
/// rule engine and the workspace-level semantic passes. Every pass that
/// honors a waiver marks it used; [`FileWaivers::finish`] then reports
/// the stale (W00) and reasonless (W01) leftovers.
#[derive(Debug, Default)]
pub struct FileWaivers {
    /// Line suppressions in source order.
    pub sups: Vec<Suppression>,
    /// File-scoped trust directives.
    pub trusts: Vec<Trust>,
    malformed: Vec<Finding>,
    used: Vec<bool>,
    trust_used: Vec<bool>,
}

impl FileWaivers {
    /// Extract waivers from a lexed file. Malformed `gcr-lint:` comments
    /// (unknown rule id, missing `allow(...)`/`trust(...)`) are recorded
    /// as W00 findings immediately — a waiver that silently fails to
    /// parse is worse than none.
    pub fn parse(rel: &str, lx: &Lexed) -> FileWaivers {
        let mut w = FileWaivers::default();
        for c in &lx.comments {
            let body = c.text.trim_start_matches('/').trim();
            let Some(rest) = body.strip_prefix("gcr-lint:") else {
                continue;
            };
            let rest = rest.trim();
            if let Some(inner) = rest.strip_prefix("trust(") {
                let parsed = inner.split_once(')').and_then(|(id, reason)| {
                    (Rule::parse(id.trim()) == Some(Rule::D03T)).then(|| reason.trim().to_string())
                });
                match parsed {
                    Some(reason) => w.trusts.push(Trust {
                        line: c.line,
                        reason,
                    }),
                    None => w.malformed.push(malformed_finding(rel, lx, c.line, body)),
                }
                continue;
            }
            let parsed = (|| {
                let inner = rest.strip_prefix("allow(")?;
                let (ids, reason) = inner.split_once(')')?;
                let mut rules = Vec::new();
                for id in ids.split(',') {
                    rules.push(Rule::parse(id.trim())?);
                }
                Some((rules, reason.trim().to_string()))
            })();
            match parsed {
                Some((rules, reason)) => {
                    let applies_to = if c.own_line {
                        next_code_line(lx, c.line)
                    } else {
                        c.line
                    };
                    w.sups.push(Suppression {
                        line: c.line,
                        applies_to,
                        rules,
                        reason,
                    });
                }
                None => w.malformed.push(malformed_finding(rel, lx, c.line, body)),
            }
        }
        w.used = vec![false; w.sups.len()];
        w.trust_used = vec![false; w.trusts.len()];
        w
    }

    /// Is a finding of `rule` on `line` waived? Marks matching
    /// suppressions used. A line waiver for D03 also covers D03-T (and
    /// vice versa): both certify the same site cannot panic.
    pub fn waives(&mut self, line: usize, rule: Rule) -> bool {
        let mut hit = false;
        for (i, s) in self.sups.iter().enumerate() {
            if s.applies_to != line {
                continue;
            }
            let matches = s.rules.contains(&rule)
                || (matches!(rule, Rule::D03 | Rule::D03T)
                    && (s.rules.contains(&Rule::D03) || s.rules.contains(&Rule::D03T)));
            if matches {
                self.used[i] = true;
                hit = true;
            }
        }
        hit
    }

    /// Is the whole file a trusted D03-T boundary? `had_panic_sites` is
    /// whether the file actually contains panic sites — a trust directive
    /// in a panic-free file is stale and stays unused.
    pub fn trusted(&mut self, had_panic_sites: bool) -> bool {
        if self.trusts.is_empty() {
            return false;
        }
        if had_panic_sites {
            for u in &mut self.trust_used {
                *u = true;
            }
        }
        true
    }

    /// Report stale (W00) and reasonless (W01) waivers. Call once, after
    /// every pass has had the chance to mark usage.
    pub fn finish(mut self, rel: &str, lx: &Lexed) -> Vec<Finding> {
        let mut out = std::mem::take(&mut self.malformed);
        for (i, s) in self.sups.iter().enumerate() {
            if !self.used[i] {
                out.push(Finding {
                    file: rel.to_string(),
                    line: s.line,
                    rule: Rule::W00,
                    message: format!(
                        "stale suppression: allow({}) waives nothing on line {} — remove it",
                        s.rules.iter().map(Rule::id).collect::<Vec<_>>().join(","),
                        s.applies_to
                    ),
                    snippet: lx.snippet(s.line).to_string(),
                    status: Status::New,
                });
            }
            if s.reason.is_empty() {
                out.push(Finding {
                    file: rel.to_string(),
                    line: s.line,
                    rule: Rule::W01,
                    message: "suppression without a justification — say why the waiver is safe"
                        .to_string(),
                    snippet: lx.snippet(s.line).to_string(),
                    status: Status::New,
                });
            }
        }
        for (i, t) in self.trusts.iter().enumerate() {
            if !self.trust_used[i] {
                out.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: Rule::W00,
                    message: "stale trust(D03-T): the file has no panic sites to certify — \
                              remove it"
                        .to_string(),
                    snippet: lx.snippet(t.line).to_string(),
                    status: Status::New,
                });
            }
            if t.reason.is_empty() {
                out.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: Rule::W01,
                    message: "trust(D03-T) without a justification — say why every panic \
                              site in this file is invariant-guarded"
                        .to_string(),
                    snippet: lx.snippet(t.line).to_string(),
                    status: Status::New,
                });
            }
        }
        out
    }
}

fn malformed_finding(rel: &str, lx: &Lexed, line: usize, body: &str) -> Finding {
    Finding {
        file: rel.to_string(),
        line,
        rule: Rule::W00,
        message: format!(
            "malformed suppression `{}` — expected \
             `gcr-lint: allow(D0x[,D0y]) <reason>` or `gcr-lint: trust(D03-T) <reason>`",
            body
        ),
        snippet: lx.snippet(line).to_string(),
        status: Status::New,
    }
}

/// The first line after `line` that carries a code token (the item an
/// own-line suppression decorates); `line` itself if none follows.
fn next_code_line(lx: &Lexed, line: usize) -> usize {
    lx.toks
        .iter()
        .map(|t| t.line)
        .find(|&l| l > line)
        .unwrap_or(line)
}

/// Apply a file's waivers to its raw local findings: waived findings are
/// removed, then stale (W00) and unjustified (W01) waivers are appended
/// as findings of their own. Single-file convenience around
/// [`FileWaivers`] for [`crate::lint_source`].
pub fn apply_file_waivers(
    rel: &str,
    lx: &Lexed,
    mut waivers: FileWaivers,
    findings: Vec<Finding>,
) -> Vec<Finding> {
    let mut kept: Vec<Finding> = findings
        .into_iter()
        .filter(|f| !waivers.waives(f.line, f.rule))
        .collect();
    kept.append(&mut waivers.finish(rel, lx));
    kept.sort_by_key(|f| (f.line, f.rule));
    kept
}
