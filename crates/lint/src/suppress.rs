//! Inline suppressions: `// gcr-lint: allow(D01) <reason>`.
//!
//! A suppression on its own line covers the next code line; a trailing
//! suppression covers its own line. Several rules may be listed
//! (`allow(D01,D03)`). Every suppression must carry a justification, and
//! a suppression that suppresses nothing is itself a finding (S00) — the
//! analyzer refuses to let dead waivers accumulate.

use crate::lexer::Lexed;
use crate::report::{Finding, Rule, Status};

/// One parsed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment sits on.
    pub line: usize,
    /// Line whose findings it waives.
    pub applies_to: usize,
    /// Rules waived.
    pub rules: Vec<Rule>,
    /// Justification text after the `allow(...)`.
    pub reason: String,
}

/// Extract suppressions from a lexed file. Malformed `gcr-lint:` comments
/// (unknown rule id, missing `allow(...)`) are reported as S00 findings
/// immediately — a waiver that silently fails to parse is worse than none.
pub fn parse_suppressions(rel: &str, lx: &Lexed) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut malformed = Vec::new();
    for c in &lx.comments {
        let body = c.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("gcr-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let parsed = (|| {
            let inner = rest.strip_prefix("allow(")?;
            let (ids, reason) = inner.split_once(')')?;
            let mut rules = Vec::new();
            for id in ids.split(',') {
                rules.push(Rule::parse(id.trim())?);
            }
            Some((rules, reason.trim().to_string()))
        })();
        match parsed {
            Some((rules, reason)) => {
                let applies_to = if c.own_line {
                    next_code_line(lx, c.line)
                } else {
                    c.line
                };
                sups.push(Suppression {
                    line: c.line,
                    applies_to,
                    rules,
                    reason,
                });
            }
            None => malformed.push(Finding {
                file: rel.to_string(),
                line: c.line,
                rule: Rule::S00,
                message: format!(
                    "malformed suppression `{}` — expected \
                     `gcr-lint: allow(D0x[,D0y]) <reason>`",
                    body
                ),
                snippet: lx.snippet(c.line).to_string(),
                status: Status::New,
            }),
        }
    }
    (sups, malformed)
}

/// The first line after `line` that carries a code token (the item an
/// own-line suppression decorates); `line` itself if none follows.
fn next_code_line(lx: &Lexed, line: usize) -> usize {
    lx.toks
        .iter()
        .map(|t| t.line)
        .find(|&l| l > line)
        .unwrap_or(line)
}

/// Apply suppressions to raw findings: waived findings are removed, then
/// stale (S00) and unjustified (S01) suppressions are appended as
/// findings of their own.
pub fn apply_suppressions(
    rel: &str,
    lx: &Lexed,
    sups: &[Suppression],
    findings: Vec<Finding>,
) -> Vec<Finding> {
    let mut used = vec![false; sups.len()];
    let mut kept = Vec::new();
    for f in findings {
        let mut waived = false;
        for (i, s) in sups.iter().enumerate() {
            if s.applies_to == f.line && s.rules.contains(&f.rule) {
                used[i] = true;
                waived = true;
            }
        }
        if !waived {
            kept.push(f);
        }
    }
    for (i, s) in sups.iter().enumerate() {
        if !used[i] {
            kept.push(Finding {
                file: rel.to_string(),
                line: s.line,
                rule: Rule::S00,
                message: format!(
                    "stale suppression: allow({}) waives nothing on line {} — remove it",
                    s.rules.iter().map(Rule::id).collect::<Vec<_>>().join(","),
                    s.applies_to
                ),
                snippet: lx.snippet(s.line).to_string(),
                status: Status::New,
            });
        }
        if s.reason.is_empty() {
            kept.push(Finding {
                file: rel.to_string(),
                line: s.line,
                rule: Rule::S01,
                message: "suppression without a justification — say why the waiver is safe"
                    .to_string(),
                snippet: lx.snippet(s.line).to_string(),
                status: Status::New,
            });
        }
    }
    kept.sort_by_key(|f| (f.line, f.rule));
    kept
}
