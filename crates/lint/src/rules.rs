//! The four determinism & protocol-safety rules, implemented over the
//! lexer's token stream and blanked line text.
//!
//! | Rule | Scope | What it catches |
//! |------|-------|-----------------|
//! | D01  | deterministic crates | iteration over `HashMap`/`HashSet` |
//! | D02  | everything but bench + CLI | wall clock, OS entropy, threads, env |
//! | D03  | recovery-critical modules | `unwrap`/`expect`/`panic!`/unchecked `[...]` |
//! | D04  | protocol crates | `#[allow(dead_code)]` on `pub fn … (&mut …)` |

use std::collections::BTreeSet;

use crate::lexer::{in_spans, Lexed, Tok, TokKind};
use crate::policy::Policy;
use crate::report::{Finding, Rule, Status};

/// Methods whose call on a hash-ordered container observes its order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Nondeterministic sources banned by D02 (substring over blanked code,
/// with identifier-boundary checks).
const D02_PATTERNS: &[&str] = &[
    "Instant::now",
    "std::time::Instant",
    "SystemTime",
    "std::thread",
    "thread::spawn",
    "thread::scope",
    "available_parallelism",
    "std::env",
    "RandomState",
];

/// Keywords that may legitimately sit directly before a `[` that is *not*
/// an index expression (slice patterns, array expressions, types). Shared
/// with the call graph's panic-site extractor so D03 and D03-T agree on
/// what counts as an unchecked index.
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "mut", "ref", "move", "as", "else", "return", "break", "continue", "match",
    "loop", "while", "if", "unsafe", "dyn", "impl", "where", "static", "const", "use", "mod",
    "enum", "struct", "fn", "pub", "type", "trait", "box",
];

/// Run every rule enabled by `policy` on one lexed file. Findings inside
/// `#[cfg(test)]` spans are skipped: test code runs outside the simulated
/// world and its determinism is checked dynamically, not statically.
pub fn check(rel: &str, lx: &Lexed, policy: Policy) -> Vec<Finding> {
    let tests = crate::lexer::test_spans(lx);
    let mut out = Vec::new();
    if policy.d01 {
        d01(rel, lx, &tests, &mut out);
    }
    if policy.d02 {
        d02(rel, lx, &tests, &mut out);
    }
    if policy.d03 {
        d03(rel, lx, &tests, &mut out);
    }
    if policy.d04 {
        d04(rel, lx, &tests, &mut out);
    }
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

fn finding(rel: &str, lx: &Lexed, line: usize, rule: Rule, message: String) -> Finding {
    Finding {
        file: rel.to_string(),
        line,
        rule,
        message,
        snippet: lx.snippet(line).to_string(),
        status: Status::New,
    }
}

fn is_hash_type(t: &Tok) -> bool {
    t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet")
}

/// Identifiers bound to a `HashMap`/`HashSet` anywhere in the file:
/// `let m = HashMap::new()`, `m: HashMap<..>` (locals, fields, params),
/// including `std::collections::`-qualified spellings.
pub(crate) fn hash_bound_idents(toks: &[Tok]) -> BTreeSet<String> {
    let mut bound = BTreeSet::new();
    for (k, t) in toks.iter().enumerate() {
        if !is_hash_type(t) {
            continue;
        }
        // Walk back over a path prefix: (`ident` `:` `:`)* .
        let mut j = k;
        while j >= 3
            && toks[j - 1].text == ":"
            && toks[j - 2].text == ":"
            && toks[j - 3].kind == TokKind::Ident
        {
            j -= 3;
        }
        if j == 0 {
            continue;
        }
        // `name : HashMap` (ascription, not a path `::`) or `name = Hash…`.
        let prev = &toks[j - 1];
        let ascription = prev.text == ":" && (j < 2 || toks[j - 2].text != ":");
        let binder = if ascription || prev.text == "=" {
            toks.get(j.wrapping_sub(2))
        } else {
            None
        };
        if let Some(b) = binder {
            if b.kind == TokKind::Ident && !NON_INDEX_KEYWORDS.contains(&b.text.as_str()) {
                bound.insert(b.text.clone());
            }
        }
    }
    bound
}

fn d01(rel: &str, lx: &Lexed, tests: &[(usize, usize)], out: &mut Vec<Finding>) {
    let toks = &lx.toks;
    let bound = hash_bound_idents(toks);
    for (i, t) in toks.iter().enumerate() {
        if in_spans(tests, t.line) {
            continue;
        }
        // `name.iter()` / `name.keys()` / … where `name` is hash-bound,
        // and `HashMap::new().into_iter()`-style direct chains.
        if t.text == "." {
            let recv_hash = i > 0
                && ((toks[i - 1].kind == TokKind::Ident && bound.contains(&toks[i - 1].text))
                    || toks[i - 1].text == ")" && chain_root_is_hash(toks, i - 1, &bound));
            if recv_hash {
                if let (Some(m), Some(p)) = (toks.get(i + 1), toks.get(i + 2)) {
                    if m.kind == TokKind::Ident
                        && HASH_ITER_METHODS.contains(&m.text.as_str())
                        && p.text == "("
                    {
                        out.push(finding(
                            rel,
                            lx,
                            t.line,
                            Rule::D01,
                            format!(
                                "iteration over hash-ordered container via `.{}()` — \
                                 use BTreeMap/BTreeSet or collect and sort",
                                m.text
                            ),
                        ));
                    }
                }
            }
        }
        // `for pat in &name { … }` / `for pat in name { … }`.
        if t.kind == TokKind::Ident && t.text == "for" {
            let mut j = i + 1;
            let mut in_at = None;
            while j < toks.len() && toks[j].text != "{" {
                if toks[j].kind == TokKind::Ident && toks[j].text == "in" {
                    in_at = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(start) = in_at else { continue };
            let mut j = start + 1;
            while j < toks.len() && toks[j].text != "{" {
                let tk = &toks[j];
                if tk.kind == TokKind::Ident && bound.contains(&tk.text) {
                    // Only when iterated directly (`&name` / `name`), not
                    // when a method is applied (`name.len()` is fine and
                    // `name.keys()` is caught by the method check above).
                    let next_is_dot = toks.get(j + 1).is_some_and(|n| n.text == ".");
                    if !next_is_dot {
                        out.push(finding(
                            rel,
                            lx,
                            tk.line,
                            Rule::D01,
                            format!(
                                "`for … in` over hash-ordered `{}` — \
                                 use BTreeMap/BTreeSet or collect and sort",
                                tk.text
                            ),
                        ));
                    }
                }
                j += 1;
            }
        }
    }
}

/// Is the call chain ending at the `)` at index `close` rooted in a
/// hash-bound identifier or a `HashMap`/`HashSet` constructor? Covers
/// `HashMap::new().into_iter()` and `name.clone().drain()`.
fn chain_root_is_hash(toks: &[Tok], close: usize, bound: &BTreeSet<String>) -> bool {
    // Walk back to the matching `(`.
    let mut depth = 0i32;
    let mut j = close;
    loop {
        match toks[j].text.as_str() {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if j == 0 {
            return false;
        }
        j -= 1;
    }
    // Before `(` sits a method/function name; before that a path or chain.
    let mut j = j.saturating_sub(1);
    while j > 0 {
        let t = &toks[j];
        if is_hash_type(t) {
            return true;
        }
        if t.kind == TokKind::Ident && bound.contains(&t.text) {
            return true;
        }
        match t.text.as_str() {
            ":" | "." => j -= 1,
            _ if t.kind == TokKind::Ident => j -= 1,
            _ => return false,
        }
    }
    false
}

fn d02(rel: &str, lx: &Lexed, tests: &[(usize, usize)], out: &mut Vec<Finding>) {
    for (idx, code) in lx.code_lines.iter().enumerate() {
        let line = idx + 1;
        if in_spans(tests, line) {
            continue;
        }
        // Report at most one finding per line: the patterns overlap
        // (`std::time::Instant` and `Instant::now` both match one call).
        'patterns: for pat in D02_PATTERNS {
            for (at, _) in code.match_indices(pat) {
                let before_ok = at == 0
                    || !code.as_bytes()[at - 1].is_ascii_alphanumeric()
                        && code.as_bytes()[at - 1] != b'_';
                let end = at + pat.len();
                let after_ok = end >= code.len()
                    || !code.as_bytes()[end].is_ascii_alphanumeric()
                        && code.as_bytes()[end] != b'_';
                if before_ok && after_ok {
                    out.push(finding(
                        rel,
                        lx,
                        line,
                        Rule::D02,
                        format!(
                            "nondeterministic source `{pat}` — simulation code must use \
                             sim time / DetRng (bench and the CLI are exempt)"
                        ),
                    ));
                    break 'patterns;
                }
            }
        }
    }
}

fn d03(rel: &str, lx: &Lexed, tests: &[(usize, usize)], out: &mut Vec<Finding>) {
    let toks = &lx.toks;
    for (i, t) in toks.iter().enumerate() {
        if in_spans(tests, t.line) {
            continue;
        }
        if t.kind == TokKind::Ident && (t.text == "unwrap" || t.text == "expect") {
            let dotted = i > 0 && toks[i - 1].text == ".";
            let called = toks.get(i + 1).is_some_and(|n| n.text == "(");
            if dotted && called {
                out.push(finding(
                    rel,
                    lx,
                    t.line,
                    Rule::D03,
                    format!(
                        "`.{}()` on the recovery path — an injected fault must degrade \
                         into a typed `Err`, not an abort",
                        t.text
                    ),
                ));
            }
        }
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && toks.get(i + 1).is_some_and(|n| n.text == "!")
        {
            out.push(finding(
                rel,
                lx,
                t.line,
                Rule::D03,
                format!(
                    "`{}!` on the recovery path — return a typed error through the \
                     recovery coordinator instead",
                    t.text
                ),
            ));
        }
        if t.text == "[" && i > 0 {
            let prev = &toks[i - 1];
            let indexes = match prev.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct => prev.text == ")" || prev.text == "]",
                _ => false,
            };
            if indexes {
                out.push(finding(
                    rel,
                    lx,
                    t.line,
                    Rule::D03,
                    format!(
                        "unchecked index `{}[…]` on the recovery path — use `.get()` \
                         and propagate the miss",
                        prev.text
                    ),
                ));
            }
        }
    }
}

fn d04(rel: &str, lx: &Lexed, tests: &[(usize, usize)], out: &mut Vec<Finding>) {
    let toks = &lx.toks;
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let attr = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "allow"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "dead_code"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if !attr || in_spans(tests, toks[i].line) {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        let mut j = i + 7;
        // Skip further attributes on the same item.
        while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
            let mut depth = 0i32;
            j += 1;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Visibility + qualifiers up to the item keyword.
        let mut is_pub = false;
        let mut fn_at = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "pub" => {
                    is_pub = true;
                    // Skip a `(crate)`/`(super)` restriction.
                    if toks.get(j + 1).is_some_and(|n| n.text == "(") {
                        while j < toks.len() && toks[j].text != ")" {
                            j += 1;
                        }
                    }
                }
                "fn" => {
                    fn_at = Some(j);
                    break;
                }
                "async" | "unsafe" | "const" | "extern" => {}
                _ => break, // struct/enum/mod/…: not a fn item
            }
            j += 1;
        }
        let Some(f) = fn_at else {
            i += 7;
            continue;
        };
        if !is_pub {
            i = f + 1;
            continue;
        }
        let name = toks.get(f + 1).map(|t| t.text.clone()).unwrap_or_default();
        // Signature: tokens until the body `{` or a trailing `;`.
        let mut k = f + 1;
        let mut takes_mut_ref = false;
        while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
            if toks[k].text == "&" {
                let mut n = k + 1;
                if toks.get(n).is_some_and(|t| t.kind == TokKind::Lifetime) {
                    n += 1;
                }
                if toks.get(n).is_some_and(|t| t.text == "mut") {
                    takes_mut_ref = true;
                }
            }
            k += 1;
        }
        if takes_mut_ref {
            out.push(finding(
                rel,
                lx,
                attr_line,
                Rule::D04,
                format!(
                    "`#[allow(dead_code)]` hides `pub fn {name}` taking `&mut` state — \
                     dead protocol paths rot; wire it up or delete it"
                ),
            ));
        }
        i = k.max(i + 7);
    }
}
