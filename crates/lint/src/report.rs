//! Findings and the analyzer's human / JSON reports.

use gcr_json::Json;

/// Rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration over a hash-ordered container in a deterministic crate.
    D01,
    /// Wall-clock / OS entropy / threads / env outside exempt surfaces.
    D02,
    /// `unwrap`/`expect`/`panic!`/unchecked indexing on the recovery path.
    D03,
    /// `#[allow(dead_code)]` on a `pub fn` taking `&mut` state.
    D04,
    /// Transitive panic-reachability: a recovery-critical fn reaches a
    /// panic site through a workspace callee (call-graph pass).
    D03T,
    /// Determinism taint dataflow: a nondeterminism source *flows into* a
    /// digest / trace record / protocol payload sink (witness chain).
    D10,
    /// Discarded `Result` (`let _ = …`) carrying a protocol error type.
    E01,
    /// Statement-level `.ok()` discarding a protocol `Result`.
    E02,
    /// `.unwrap_or_default()` swallowing a protocol `Result`'s error.
    E03,
    /// Control tag sent without a matching receive (or vice versa).
    P01,
    /// Wildcard `_ =>` over a protocol enum in a recovery-critical module.
    P02,
    /// Protocol phase-order violation: the extracted ctrl/storage event
    /// sequence leaves the checked-in phase-machine spec (witness path).
    P10,
    /// Session tag-duality: per protocol `Mode`, a ctrl tag emitted but
    /// never handled (peer hangs), handled but unemittable (dead handler),
    /// or emitted and handled under different modes.
    P20,
    /// GC-floor soundness: a value read from the *pending* (uncommitted)
    /// generation ledger flows into a log-trim / floor-advertise sink.
    P21,
    /// Shard-isolation: shard-local simulator state touched outside the
    /// merge/global-sequence boundary.
    S01,
    /// Wire-shape pairing: an encoder's ordered field writes diverge from
    /// its decoder's field reads (arity, order, or payload type).
    W10,
    /// Stale waiver: it matches no finding on its target line.
    W00,
    /// Waiver without a justification.
    W01,
}

impl Rule {
    /// The identifier as written in suppressions and reports.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::D01 => "D01",
            Rule::D02 => "D02",
            Rule::D03 => "D03",
            Rule::D04 => "D04",
            Rule::D03T => "D03-T",
            Rule::D10 => "D10",
            Rule::E01 => "E01",
            Rule::E02 => "E02",
            Rule::E03 => "E03",
            Rule::P01 => "P01",
            Rule::P02 => "P02",
            Rule::P10 => "P10",
            Rule::P20 => "P20",
            Rule::P21 => "P21",
            Rule::S01 => "S01",
            Rule::W10 => "W10",
            Rule::W00 => "W00",
            Rule::W01 => "W01",
        }
    }

    /// Parse a rule id (as found inside `allow(...)`). `D03-T` also
    /// accepts the hyphen-free spelling `D03T`.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "D01" => Some(Rule::D01),
            "D02" => Some(Rule::D02),
            "D03" => Some(Rule::D03),
            "D04" => Some(Rule::D04),
            "D03-T" | "D03T" => Some(Rule::D03T),
            "D10" => Some(Rule::D10),
            "E01" => Some(Rule::E01),
            "E02" => Some(Rule::E02),
            "E03" => Some(Rule::E03),
            "P01" => Some(Rule::P01),
            "P02" => Some(Rule::P02),
            "P10" => Some(Rule::P10),
            "P20" => Some(Rule::P20),
            "P21" => Some(Rule::P21),
            "S01" => Some(Rule::S01),
            "W10" => Some(Rule::W10),
            "W00" => Some(Rule::W00),
            "W01" => Some(Rule::W01),
            _ => None,
        }
    }

    /// Every rule, in catalog order.
    pub const ALL: &'static [Rule] = &[
        Rule::D01,
        Rule::D02,
        Rule::D03,
        Rule::D03T,
        Rule::D04,
        Rule::D10,
        Rule::E01,
        Rule::E02,
        Rule::E03,
        Rule::P01,
        Rule::P02,
        Rule::P10,
        Rule::P20,
        Rule::P21,
        Rule::S01,
        Rule::W10,
        Rule::W00,
        Rule::W01,
    ];
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// Where a finding stands after suppressions and the baseline are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Fails the run.
    New,
    /// Grandfathered by the committed baseline.
    Baselined,
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-facing description.
    pub message: String,
    /// Trimmed source line, used as the baseline matching key.
    pub snippet: String,
    /// New or baselined.
    pub status: Status,
}

impl Finding {
    /// Render as `file:line: RULE message`.
    pub fn human(&self) -> String {
        let tag = match self.status {
            Status::New => "",
            Status::Baselined => " [baseline]",
        };
        format!(
            "{}:{}: {}{} {}",
            self.file, self.line, self.rule, tag, self.message
        )
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("file", Json::from(self.file.as_str())),
            ("line", Json::from(self.line as u64)),
            ("rule", Json::from(self.rule.id())),
            ("message", Json::from(self.message.as_str())),
            ("snippet", Json::from(self.snippet.as_str())),
            (
                "status",
                Json::from(match self.status {
                    Status::New => "new",
                    Status::Baselined => "baseline",
                }),
            ),
        ])
    }
}

/// Call-graph construction statistics, reported so resolution quality is
/// auditable from CI artifacts.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStats {
    /// Functions indexed across the workspace (non-test).
    pub functions: usize,
    /// Call sites examined inside those functions.
    pub call_sites: usize,
    /// Sites linked to exactly the right workspace definition(s).
    pub resolved: usize,
    /// Sites whose callee name exists nowhere in the workspace index
    /// (std / core / closure calls) — confidently classified external.
    pub external: usize,
    /// Sites linked by name fallback to several same-named definitions —
    /// the over-approximation the rules accept but the metric reports.
    pub ambiguous: usize,
}

impl GraphStats {
    /// Fraction of call sites confidently resolved (workspace or
    /// external); ambiguous fallback links count against it.
    pub fn resolution_rate(&self) -> f64 {
        if self.call_sites == 0 {
            return 1.0;
        }
        (self.resolved + self.external) as f64 / self.call_sites as f64
    }

    fn to_json(self) -> Json {
        // Fixed-point with 4 decimals keeps the report bit-stable.
        let rate = format!("{:.4}", self.resolution_rate());
        Json::obj([
            ("functions", Json::from(self.functions as u64)),
            ("call_sites", Json::from(self.call_sites as u64)),
            ("resolved", Json::from(self.resolved as u64)),
            ("external", Json::from(self.external as u64)),
            ("ambiguous", Json::from(self.ambiguous as u64)),
            ("resolution_rate", Json::from(rate.as_str())),
        ])
    }
}

/// A full analyzer run over the workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings (new + baselined), sorted by file, line, rule.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Baseline entries that matched nothing — the baseline should shrink.
    pub unused_baseline: Vec<String>,
    /// Call-graph statistics (None for single-file analysis, which has no
    /// workspace index to build a graph from).
    pub graph: Option<GraphStats>,
}

impl Report {
    /// Number of findings not covered by the baseline.
    pub fn new_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.status == Status::New)
            .count()
    }

    /// Does the run pass (no new findings)?
    pub fn passed(&self) -> bool {
        self.new_count() == 0
    }

    /// Human report: one line per finding plus a summary.
    pub fn human(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            s.push_str(&f.human());
            s.push('\n');
        }
        for u in &self.unused_baseline {
            s.push_str(&format!("warning: unused baseline entry: {u}\n"));
        }
        if let Some(g) = &self.graph {
            s.push_str(&format!(
                "call graph: {} fn(s), {} call site(s), {:.1}% resolved \
                 ({} workspace, {} external, {} ambiguous)\n",
                g.functions,
                g.call_sites,
                g.resolution_rate() * 100.0,
                g.resolved,
                g.external,
                g.ambiguous,
            ));
        }
        let baselined = self.findings.len() - self.new_count();
        s.push_str(&format!(
            "{} file(s) scanned, {} finding(s) ({} new, {} baselined)",
            self.files_scanned,
            self.findings.len(),
            self.new_count(),
            baselined,
        ));
        s
    }

    /// The report as a JSON document (deterministic field order).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("files_scanned", Json::from(self.files_scanned as u64)),
            ("new", Json::from(self.new_count() as u64)),
            (
                "findings",
                Json::from(
                    self.findings
                        .iter()
                        .map(Finding::to_json)
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "unused_baseline",
                Json::from(
                    self.unused_baseline
                        .iter()
                        .map(|u| Json::from(u.as_str()))
                        .collect::<Vec<_>>(),
                ),
            ),
        ];
        if let Some(g) = &self.graph {
            fields.push(("callgraph", g.to_json()));
        }
        Json::obj(fields)
    }

    /// The report as a minimal SARIF 2.1.0 document, so CI can attach the
    /// findings to PR diffs. New findings are `error` (they fail the run),
    /// baselined ones are `note`. Deterministic: findings keep the
    /// report's sorted order and the rule metadata follows the catalog.
    pub fn to_sarif(&self) -> Json {
        let rules: Vec<Json> = crate::catalog::CATALOG
            .iter()
            .map(|doc| {
                Json::obj([
                    ("id", Json::from(doc.rule.id())),
                    (
                        "shortDescription",
                        Json::obj([("text", Json::from(doc.summary))]),
                    ),
                    ("helpUri", Json::from("README.md")),
                ])
            })
            .collect();
        let results: Vec<Json> = self
            .findings
            .iter()
            .map(|f| {
                let level = match f.status {
                    Status::New => "error",
                    Status::Baselined => "note",
                };
                let location = Json::obj([(
                    "physicalLocation",
                    Json::obj([
                        (
                            "artifactLocation",
                            Json::obj([("uri", Json::from(f.file.as_str()))]),
                        ),
                        (
                            "region",
                            Json::obj([("startLine", Json::from(f.line as u64))]),
                        ),
                    ]),
                )]);
                Json::obj([
                    ("ruleId", Json::from(f.rule.id())),
                    ("level", Json::from(level)),
                    (
                        "message",
                        Json::obj([("text", Json::from(f.message.as_str()))]),
                    ),
                    ("locations", Json::from(vec![location])),
                ])
            })
            .collect();
        let driver = Json::obj([
            ("name", Json::from("gcr-lint")),
            ("informationUri", Json::from("DESIGN.md")),
            ("rules", Json::from(rules)),
        ]);
        let run = Json::obj([
            ("tool", Json::obj([("driver", driver)])),
            ("results", Json::from(results)),
        ]);
        Json::obj([
            (
                "$schema",
                Json::from(
                    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
                ),
            ),
            ("version", Json::from("2.1.0")),
            ("runs", Json::from(vec![run])),
        ])
    }
}
