//! Findings and the analyzer's human / JSON reports.

use gcr_json::Json;

/// Rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration over a hash-ordered container in a deterministic crate.
    D01,
    /// Wall-clock / OS entropy / threads / env outside exempt surfaces.
    D02,
    /// `unwrap`/`expect`/`panic!`/unchecked indexing on the recovery path.
    D03,
    /// `#[allow(dead_code)]` on a `pub fn` taking `&mut` state.
    D04,
    /// Stale suppression: it matches no finding on its target line.
    S00,
    /// Suppression without a justification.
    S01,
}

impl Rule {
    /// The identifier as written in suppressions and reports.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::D01 => "D01",
            Rule::D02 => "D02",
            Rule::D03 => "D03",
            Rule::D04 => "D04",
            Rule::S00 => "S00",
            Rule::S01 => "S01",
        }
    }

    /// Parse a rule id (as found inside `allow(...)`).
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "D01" => Some(Rule::D01),
            "D02" => Some(Rule::D02),
            "D03" => Some(Rule::D03),
            "D04" => Some(Rule::D04),
            "S00" => Some(Rule::S00),
            "S01" => Some(Rule::S01),
            _ => None,
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// Where a finding stands after suppressions and the baseline are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Fails the run.
    New,
    /// Grandfathered by the committed baseline.
    Baselined,
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-facing description.
    pub message: String,
    /// Trimmed source line, used as the baseline matching key.
    pub snippet: String,
    /// New or baselined.
    pub status: Status,
}

impl Finding {
    /// Render as `file:line: RULE message`.
    pub fn human(&self) -> String {
        let tag = match self.status {
            Status::New => "",
            Status::Baselined => " [baseline]",
        };
        format!(
            "{}:{}: {}{} {}",
            self.file, self.line, self.rule, tag, self.message
        )
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("file", Json::from(self.file.as_str())),
            ("line", Json::from(self.line as u64)),
            ("rule", Json::from(self.rule.id())),
            ("message", Json::from(self.message.as_str())),
            ("snippet", Json::from(self.snippet.as_str())),
            (
                "status",
                Json::from(match self.status {
                    Status::New => "new",
                    Status::Baselined => "baseline",
                }),
            ),
        ])
    }
}

/// A full analyzer run over the workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings (new + baselined), sorted by file, line, rule.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Baseline entries that matched nothing — the baseline should shrink.
    pub unused_baseline: Vec<String>,
}

impl Report {
    /// Number of findings not covered by the baseline.
    pub fn new_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.status == Status::New)
            .count()
    }

    /// Does the run pass (no new findings)?
    pub fn passed(&self) -> bool {
        self.new_count() == 0
    }

    /// Human report: one line per finding plus a summary.
    pub fn human(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            s.push_str(&f.human());
            s.push('\n');
        }
        for u in &self.unused_baseline {
            s.push_str(&format!("warning: unused baseline entry: {u}\n"));
        }
        let baselined = self.findings.len() - self.new_count();
        s.push_str(&format!(
            "{} file(s) scanned, {} finding(s) ({} new, {} baselined)",
            self.files_scanned,
            self.findings.len(),
            self.new_count(),
            baselined,
        ));
        s
    }

    /// The report as a JSON document (deterministic field order).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("files_scanned", Json::from(self.files_scanned as u64)),
            ("new", Json::from(self.new_count() as u64)),
            (
                "findings",
                Json::from(
                    self.findings
                        .iter()
                        .map(Finding::to_json)
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "unused_baseline",
                Json::from(
                    self.unused_baseline
                        .iter()
                        .map(|u| Json::from(u.as_str()))
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }
}
