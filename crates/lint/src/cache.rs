//! Incremental analysis cache — warm `gcrsim lint` runs in well under
//! the interactive budget without changing a single output byte.
//!
//! Two artifact tiers, both keyed by content (never by timestamps — the
//! analyzer holds itself to its own determinism rules):
//!
//! * **Workspace report** — the full [`Report`] of a run, keyed by the
//!   analyzer version, the baseline dump and every `(path, content
//!   hash)` pair. Any edit, rename, add or delete anywhere in the
//!   workspace changes the key; a hit replays the entire report (new and
//!   baselined findings, unused-baseline warnings, call-graph stats)
//!   losslessly, so `--json` and `--sarif` stay byte-identical between
//!   cold and warm runs.
//! * **Per-file local findings** — the raw (pre-waiver) local-rule
//!   findings of one file, keyed by its path and content hash. After an
//!   edit the workspace key misses, but every *unchanged* file replays
//!   its local pass from here; only the edited files re-lex through the
//!   local rules. The workspace passes (call graph, semantic,
//!   flow-sensitive, conformance) always re-run — they are cross-file by
//!   nature and their inputs changed by definition.
//!
//! The cache is a pure memo: corrupt or unreadable entries are misses,
//! and a populated cache can be deleted at any time.

use std::fs;
use std::io;
use std::path::Path;

use gcr_json::Json;

use crate::baseline::Baseline;
use crate::collect_workspace_files;
use crate::lint_files_with_local;
use crate::policy_for;
use crate::report::{Finding, GraphStats, Report, Rule, Status};
use crate::rules;

/// Bump on any analyzer behavior change that reuses the same rule set —
/// the key also folds in [`Rule::ALL`], so adding or removing a rule
/// invalidates without a bump.
const CACHE_VERSION: u64 = 1;

/// What the cache did for one run — reported by `gcrsim lint` and
/// asserted by the warm-run budget test.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// The whole report replayed from the workspace artifact.
    pub hit: bool,
    /// Files whose local-rule findings replayed from the per-file tier.
    pub file_hits: usize,
    /// Files whose local rules ran cold.
    pub file_misses: usize,
}

/// Analyze the workspace under `root` against `baseline`, memoized under
/// `cache_dir`. The report is bit-identical to [`crate::lint_workspace`];
/// only wall-clock differs.
///
/// # Errors
/// Propagates I/O errors from the source walk and from creating the
/// cache directory. Unreadable or corrupt cache *entries* are treated as
/// misses, never as errors.
pub fn lint_workspace_cached(
    root: &Path,
    baseline: &Baseline,
    cache_dir: &Path,
) -> io::Result<(Report, CacheStats)> {
    let files = collect_workspace_files(root)?;
    fs::create_dir_all(cache_dir)?;

    let version = version_hash();
    let ws_key = workspace_key(version, baseline, &files);
    let ws_path = cache_dir.join(format!("workspace-{ws_key:016x}.json"));
    if let Some(report) = read_report(&ws_path) {
        return Ok((
            report,
            CacheStats {
                hit: true,
                file_hits: files.len(),
                file_misses: 0,
            },
        ));
    }

    let mut stats = CacheStats::default();
    let report = lint_files_with_local(&files, baseline, &mut |rel, src, lx| {
        let path = cache_dir.join(format!("file-{:016x}.json", file_key(version, rel, src)));
        if let Some(found) = read_findings(&path) {
            stats.file_hits += 1;
            return found;
        }
        stats.file_misses += 1;
        let found = rules::check(rel, lx, policy_for(rel));
        write_entry(&path, &findings_json(&found));
        found
    });
    write_entry(&ws_path, &report_json(&report));
    Ok((report, stats))
}

/// 64-bit FNV-1a — the workspace's standard content fingerprint.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(1099511628211);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Analyzer identity: the manual version plus the full rule list.
fn version_hash() -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &CACHE_VERSION.to_le_bytes());
    for r in Rule::ALL {
        h = fnv1a(h, r.id().as_bytes());
        h = fnv1a(h, b"\0");
    }
    h
}

fn workspace_key(version: u64, baseline: &Baseline, files: &[(String, String)]) -> u64 {
    let mut h = fnv1a(version, baseline.dump().as_bytes());
    for (rel, src) in files {
        h = fnv1a(h, rel.as_bytes());
        h = fnv1a(h, b"\0");
        h = fnv1a(h, &fnv1a(FNV_OFFSET, src.as_bytes()).to_le_bytes());
    }
    h
}

fn file_key(version: u64, rel: &str, src: &str) -> u64 {
    let h = fnv1a(version, rel.as_bytes());
    fnv1a(fnv1a(h, b"\0"), src.as_bytes())
}

/// Best-effort write: the cache is advisory, a full disk must not fail
/// the lint run itself.
fn write_entry(path: &Path, doc: &Json) {
    if fs::write(path, doc.pretty()).is_err() {
        remove_entry(path); // never leave a truncated artifact behind
    }
}

fn remove_entry(path: &Path) {
    if fs::remove_file(path).is_err() {
        // Nothing left to do: the next read treats it as a miss.
    }
}

fn finding_json(f: &Finding) -> Json {
    Json::obj([
        ("file", Json::from(f.file.as_str())),
        ("line", Json::from(f.line as u64)),
        ("rule", Json::from(f.rule.id())),
        ("message", Json::from(f.message.as_str())),
        ("snippet", Json::from(f.snippet.as_str())),
        (
            "status",
            Json::from(match f.status {
                Status::New => "new",
                Status::Baselined => "baseline",
            }),
        ),
    ])
}

fn parse_finding(j: &Json) -> Option<Finding> {
    Some(Finding {
        file: j.get("file")?.as_str()?.to_string(),
        line: j.get("line")?.as_usize()?,
        rule: Rule::parse(j.get("rule")?.as_str()?)?,
        message: j.get("message")?.as_str()?.to_string(),
        snippet: j.get("snippet")?.as_str()?.to_string(),
        status: match j.get("status")?.as_str()? {
            "new" => Status::New,
            "baseline" => Status::Baselined,
            _ => return None,
        },
    })
}

fn findings_json(findings: &[Finding]) -> Json {
    Json::obj([(
        "findings",
        Json::from(findings.iter().map(finding_json).collect::<Vec<_>>()),
    )])
}

fn read_findings(path: &Path) -> Option<Vec<Finding>> {
    let text = fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).ok()?;
    parse_findings(doc.get("findings")?)
}

fn parse_findings(j: &Json) -> Option<Vec<Finding>> {
    j.as_arr()?.iter().map(parse_finding).collect()
}

fn report_json(r: &Report) -> Json {
    let mut fields = vec![
        ("files_scanned", Json::from(r.files_scanned as u64)),
        (
            "findings",
            Json::from(r.findings.iter().map(finding_json).collect::<Vec<_>>()),
        ),
        (
            "unused_baseline",
            Json::from(
                r.unused_baseline
                    .iter()
                    .map(|u| Json::from(u.as_str()))
                    .collect::<Vec<_>>(),
            ),
        ),
    ];
    if let Some(g) = &r.graph {
        fields.push((
            "graph",
            Json::obj([
                ("functions", Json::from(g.functions as u64)),
                ("call_sites", Json::from(g.call_sites as u64)),
                ("resolved", Json::from(g.resolved as u64)),
                ("external", Json::from(g.external as u64)),
                ("ambiguous", Json::from(g.ambiguous as u64)),
            ]),
        ));
    }
    Json::obj(fields)
}

fn read_report(path: &Path) -> Option<Report> {
    let text = fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).ok()?;
    let graph = match doc.get("graph") {
        Some(g) => Some(GraphStats {
            functions: g.get("functions")?.as_usize()?,
            call_sites: g.get("call_sites")?.as_usize()?,
            resolved: g.get("resolved")?.as_usize()?,
            external: g.get("external")?.as_usize()?,
            ambiguous: g.get("ambiguous")?.as_usize()?,
        }),
        None => None,
    };
    Some(Report {
        findings: parse_findings(doc.get("findings")?)?,
        files_scanned: doc.get("files_scanned")?.as_usize()?,
        unused_baseline: doc
            .get("unused_baseline")?
            .as_arr()?
            .iter()
            .map(|u| u.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?,
        graph,
    })
}
