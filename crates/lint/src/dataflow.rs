//! D10 — determinism taint dataflow; P21 — GC-floor soundness; S01 —
//! shard isolation.
//!
//! **D10** upgrades D01/D02's "any use anywhere" syntactic net into a
//! flow-sensitive question: does a nondeterministic *value* actually
//! reach a determinism-critical *sink*? Sources are hash-order iteration
//! and the clock/entropy/thread/env surfaces; sinks are digest folds,
//! trace/metrics records, and protocol message payloads. The analysis is
//! an intraprocedural worklist walk over the structured CFG
//! ([`crate::cfg`]) with a taint environment per simple binding, merged
//! at joins and iterated (twice) through loops, plus a coarse
//! interprocedural summary over the call graph: a function *returns
//! taint* if its body touches a source (or it calls one that does) and
//! it returns a value. Every finding carries the source→sink witness
//! chain. Bindings killed by a clean reassignment drop their taint — the
//! exact case the syntactic rules cannot express.
//!
//! **P21** reuses the same walker for the generation ledger: a value read
//! from the *pending* (uncommitted) side of `GpState`'s ledger must
//! never reach a log-trim or floor-advertise sink (`advertise`,
//! `reset_floors`, `gc`). The sanctioned laundering point is promotion
//! into `committed` — floors derived from the committed ledger are clean
//! by construction, and that is exactly what the flow-sensitive kill
//! expresses. Trimming to an uncommitted floor destroys log bytes a
//! fallback restart still needs; the survivability oracle only catches
//! it when chaos happens to schedule the crash inside the window.
//!
//! **S01** protects the sharded kernel's bit-identical-digest invariant:
//! per-shard timer state (the types defined in
//! [`crate::policy::SHARD_BOUNDARY`]) must be reachable from another
//! shard only through the merge/global-sequence boundary. Inside the
//! scope crates (`sim`, `mpi`), any file outside the allow-listed merge
//! boundary that names a shard-local type, or reaches into the `.shards`
//! arena, is a finding — as is the boundary file itself exporting a
//! shard-local item as bare `pub`.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::cfg::{self, Cfg};
use crate::lexer::{self, Lexed, TokKind};
use crate::policy;
use crate::report::{Finding, Rule, Status};
use crate::rules;
use crate::symbols::SymbolIndex;

/// Sink function names: a call to one of these with a tainted argument
/// is a D10 finding. Digest folds, metrics/trace records, and the
/// protocol payload path.
const SINKS: &[&str] = &[
    "digest",
    "image_digest",
    "push_ckpt",
    "push_restart",
    "trace_send",
    "ctrl_send",
    "send_batch",
];

/// A taint chain: human-readable steps from source to the current value.
type Chain = Vec<(String, usize)>;

/// Taint environment: simple binding name → how it got tainted.
type Env = BTreeMap<String, Chain>;

/// Run the D10 determinism taint pass over the workspace.
pub fn check(index: &SymbolIndex, graph: &CallGraph, views: &[(&str, &Lexed)]) -> Vec<Finding> {
    let n = index.fns.len();

    // Per-file hash-bound identifier sets (reused from D01's binding scan).
    let hash_bound: Vec<BTreeSet<String>> = views
        .iter()
        .map(|(_, lx)| rules::hash_bound_idents(&lx.toks))
        .collect();

    // Summary 1: does the body touch a source at all?
    let mut gen = vec![false; n];
    for (f, fd) in index.fns.iter().enumerate() {
        let Some((lo, hi)) = fd.body else { continue };
        let lx = views[fd.file].1;
        gen[f] = has_source(&lx.toks, lo, hi, &hash_bound[fd.file]);
    }

    // Summary 2: returns-taint — generates (or transitively calls a
    // generator) *and* returns a value. Fixpoint over the call graph.
    let mut ret_taint: Vec<bool> = (0..n)
        .map(|f| gen[f] && !index.fns[f].ret.is_empty())
        .collect();
    loop {
        let mut grew = false;
        for f in 0..n {
            if ret_taint[f] || index.fns[f].ret.is_empty() {
                continue;
            }
            if graph.edges[f].iter().any(|&c| ret_taint[c]) {
                ret_taint[f] = true;
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    let mut out = Vec::new();
    for (f, fd) in index.fns.iter().enumerate() {
        let Some((lo, hi)) = fd.body else { continue };
        // A body with no source and no call into a taint-returning fn
        // cannot produce a flow; skip the CFG walk.
        let lx = views[fd.file].1;
        let calls_taint = graph.calls[f]
            .iter()
            .any(|cs| cs.targets.iter().any(|&t| ret_taint[t]));
        if !gen[f] && !calls_taint {
            continue;
        }
        let mut flow = Flow {
            index,
            lx,
            rel: views[fd.file].0,
            hash_bound: &hash_bound[fd.file],
            ret_taint: &ret_taint,
            reported: BTreeSet::new(),
            out: &mut out,
        };
        let graph_cfg = cfg::build(&lx.toks, lo, hi);
        flow.walk(&graph_cfg, Env::new());
    }
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.message.as_str(),
        ))
    });
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out
}

/// Does `[lo, hi)` contain a nondeterminism source?
fn has_source(toks: &[lexer::Tok], lo: usize, hi: usize, hash_bound: &BTreeSet<String>) -> bool {
    let hi = hi.min(toks.len());
    (lo..hi).any(|i| source_at(toks, i, hi, hash_bound).is_some())
}

/// The nondeterminism source starting at token `i`, if any.
fn source_at(
    toks: &[lexer::Tok],
    i: usize,
    hi: usize,
    hash_bound: &BTreeSet<String>,
) -> Option<String> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let path_next = |j: usize| {
        toks.get(j).is_some_and(|a| a.text == ":") && toks.get(j + 1).is_some_and(|a| a.text == ":")
    };
    match t.text.as_str() {
        "Instant" if path_next(i + 1) && toks.get(i + 3).is_some_and(|a| a.text == "now") => {
            return Some("Instant::now()".to_string());
        }
        "SystemTime" => return Some("SystemTime".to_string()),
        "RandomState" => return Some("RandomState".to_string()),
        "available_parallelism" => return Some("available_parallelism()".to_string()),
        "thread" if path_next(i + 1) => return Some("std::thread".to_string()),
        "env" if path_next(i + 1) => return Some("std::env".to_string()),
        _ => {}
    }
    // Hash-order iteration: `m.iter()` where `m` is hash-bound.
    if hash_bound.contains(&t.text)
        && toks.get(i + 1).is_some_and(|a| a.text == ".")
        && i + 2 < hi
        && toks[i + 2].kind == TokKind::Ident
        && matches!(
            toks[i + 2].text.as_str(),
            "iter" | "iter_mut" | "into_iter" | "keys" | "values" | "values_mut" | "drain"
        )
    {
        return Some(format!("hash-ordered iteration over `{}`", t.text));
    }
    None
}

struct Flow<'a> {
    index: &'a SymbolIndex,
    lx: &'a Lexed,
    rel: &'a str,
    hash_bound: &'a BTreeSet<String>,
    ret_taint: &'a [bool],
    reported: BTreeSet<(usize, String)>,
    out: &'a mut Vec<Finding>,
}

impl Flow<'_> {
    fn walk(&mut self, c: &Cfg, mut env: Env) -> Env {
        match c {
            Cfg::Stmt(lo, hi) => {
                self.stmt(&mut env, *lo, *hi);
                env
            }
            Cfg::Seq(v) => v.iter().fold(env, |e, n| self.walk(n, e)),
            Cfg::Branch(v) => {
                let mut merged = Env::new();
                for n in v {
                    for (k, chain) in self.walk(n, env.clone()) {
                        merged.entry(k).or_insert(chain);
                    }
                }
                merged
            }
            Cfg::Loop(b) => {
                // Two rounds pick up loop-carried taint; the env only
                // grows, so this is a cheap truncated fixpoint.
                for _ in 0..2 {
                    for (k, chain) in self.walk(b, env.clone()) {
                        env.entry(k).or_insert(chain);
                    }
                }
                env
            }
        }
    }

    /// Transfer one straight-line run: per `;`-separated statement,
    /// check sinks against the pre-state, then apply the binding.
    fn stmt(&mut self, env: &mut Env, lo: usize, hi: usize) {
        let toks = &self.lx.toks;
        let hi = hi.min(toks.len());
        let mut a = lo;
        while a < hi {
            let mut depth = 0i32;
            let mut b = a;
            while b < hi {
                match toks[b].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth == 0 => break,
                    _ => {}
                }
                b += 1;
            }
            if a < b {
                self.sinks(env, a, b);
                self.binding(env, a, b);
            }
            a = b + 1;
        }
    }

    /// Report tainted arguments reaching sink calls in `[a, b)`.
    fn sinks(&mut self, env: &Env, a: usize, b: usize) {
        let toks = &self.lx.toks;
        for i in a..b {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || !SINKS.contains(&t.text.as_str())
                || toks.get(i + 1).is_none_or(|n| n.text != "(")
            {
                continue;
            }
            let close = cfg::matching(toks, i + 1, toks.len());
            let Some(chain) = self.expr_taint(env, i + 2, close) else {
                continue;
            };
            let key = (t.line, t.text.clone());
            if !self.reported.insert(key) {
                continue;
            }
            let steps: Vec<String> = chain
                .iter()
                .map(|(desc, line)| format!("{desc} (line {line})"))
                .collect();
            self.out.push(Finding {
                file: self.rel.to_string(),
                line: t.line,
                rule: Rule::D10,
                message: format!(
                    "nondeterministic value flows into sink `{}(…)`: {} → {}() \
                     — the digest/trace/payload plane must be replay-stable",
                    t.text,
                    steps.join(" → "),
                    t.text,
                ),
                snippet: self.lx.snippet(t.line).to_string(),
                status: Status::New,
            });
        }
    }

    /// Apply a simple `let x = …` / `x = …` binding: taint or kill.
    fn binding(&mut self, env: &mut Env, a: usize, b: usize) {
        let toks = &self.lx.toks;
        let Some((target, rhs)) = simple_binding(toks, a, b) else {
            return; // destructuring pattern: no simple binding to track
        };
        if rhs >= b {
            env.remove(&target); // `let x;` — uninitialized, kills taint
            return;
        }
        match self.expr_taint(env, rhs, b) {
            Some(mut chain) => {
                if chain.last().map(|(d, _)| d.as_str()) != Some(&format!("`{target}`")) {
                    chain.push((format!("`{target}`"), toks[a].line));
                }
                env.insert(target, chain);
            }
            None => {
                env.remove(&target);
            }
        }
    }

    /// The leftmost taint in an expression range, if any: a source, a
    /// tainted binding, or a call to a taint-returning function.
    fn expr_taint(&self, env: &Env, lo: usize, hi: usize) -> Option<Chain> {
        let toks = &self.lx.toks;
        let hi = hi.min(toks.len());
        let mut i = lo;
        while i < hi {
            if let Some(desc) = source_at(toks, i, hi, self.hash_bound) {
                return Some(vec![(desc, toks[i].line)]);
            }
            let t = &toks[i];
            if t.kind == TokKind::Ident {
                if let Some(chain) = env.get(&t.text) {
                    return Some(chain.clone());
                }
                if toks.get(i + 1).is_some_and(|n| n.text == "(") {
                    if let Some(ids) = self.index.by_name.get(&t.text) {
                        if ids.iter().any(|&id| self.ret_taint[id]) {
                            return Some(vec![(
                                format!("`{}()` (returns a nondeterministic value)", t.text),
                                t.line,
                            )]);
                        }
                    }
                }
            }
            i += 1;
        }
        None
    }
}

/// Parse a simple `let [mut] x [: T] = …` / `x = …` statement in
/// `[a, b)`: the bound name and the RHS start. An uninitialized `let x;`
/// returns the name with RHS start `b` (the binding kills taint);
/// destructuring patterns return `None` (nothing simple to track).
fn simple_binding(toks: &[lexer::Tok], a: usize, b: usize) -> Option<(String, usize)> {
    if toks[a].text == "let" {
        let mut j = a + 1;
        if toks.get(j).is_some_and(|t| t.text == "mut") {
            j += 1;
        }
        let name = toks.get(j).filter(|t| t.kind == TokKind::Ident)?;
        // Only simple bindings: `let x = …` / `let x: T = …`. A
        // pattern (`let Some(x) = …`, `let (a, b) = …`) is skipped.
        if !toks
            .get(j + 1)
            .is_some_and(|t| t.text == ":" || t.text == "=" || t.text == ";")
        {
            return None;
        }
        let name = name.text.clone();
        let mut k = j + 1;
        // Optional `: Type` annotation, then `=` (a bare `let x;` kills).
        let mut depth = 0i32;
        while k < b {
            match toks[k].text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                "=" if depth <= 0 && toks.get(k + 1).is_none_or(|t| t.text != "=") => break,
                _ => {}
            }
            k += 1;
        }
        if k >= b {
            return Some((name, b)); // `let x;` — uninitialized
        }
        Some((name, k + 1))
    } else if toks[a].kind == TokKind::Ident
        && toks.get(a + 1).is_some_and(|t| t.text == "=")
        && toks.get(a + 2).is_none_or(|t| t.text != "=")
    {
        Some((toks[a].text.clone(), a + 2))
    } else {
        None
    }
}

/// P21 sinks: log-trim and floor-advertise surfaces. A pending-ledger
/// value reaching one of these trims log a fallback restart still needs.
const GC_SINKS: &[&str] = &["advertise", "reset_floors", "gc"];

/// The generation-ledger file P21 audits. The pending/committed split is
/// this file's contract; elsewhere `pending` names unrelated state.
const GC_FILE: &str = "crates/core/src/hooks.rs";

/// Run the P21 GC-floor soundness pass.
pub fn gc_floor(index: &SymbolIndex, views: &[(&str, &Lexed)]) -> Vec<Finding> {
    let mut out = Vec::new();
    for fd in &index.fns {
        if views[fd.file].0 != GC_FILE {
            continue;
        }
        let Some((lo, hi)) = fd.body else { continue };
        let lx = views[fd.file].1;
        // A body that never touches the pending ledger cannot leak it.
        let touches = (lo..hi.min(lx.toks.len()))
            .any(|i| lx.toks[i].kind == TokKind::Ident && lx.toks[i].text == "pending");
        if !touches {
            continue;
        }
        let mut flow = GcFlow {
            lx,
            rel: views[fd.file].0,
            reported: BTreeSet::new(),
            out: &mut out,
        };
        let graph_cfg = cfg::build(&lx.toks, lo, hi);
        flow.walk(&graph_cfg, Env::new());
    }
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.message.as_str(),
        ))
    });
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out
}

/// The P21 walker: D10's flow-sensitive machinery with the pending
/// ledger as the sole source and the GC surfaces as sinks. Promotion
/// into `committed` is not a sink, so the committed-ledger laundering
/// path stays clean — exactly the sanctioned flow.
struct GcFlow<'a> {
    lx: &'a Lexed,
    rel: &'a str,
    reported: BTreeSet<(usize, String)>,
    out: &'a mut Vec<Finding>,
}

impl GcFlow<'_> {
    fn walk(&mut self, c: &Cfg, mut env: Env) -> Env {
        match c {
            Cfg::Stmt(lo, hi) => {
                self.stmt(&mut env, *lo, *hi);
                env
            }
            Cfg::Seq(v) => v.iter().fold(env, |e, n| self.walk(n, e)),
            Cfg::Branch(v) => {
                let mut merged = Env::new();
                for n in v {
                    for (k, chain) in self.walk(n, env.clone()) {
                        merged.entry(k).or_insert(chain);
                    }
                }
                merged
            }
            Cfg::Loop(b) => {
                for _ in 0..2 {
                    for (k, chain) in self.walk(b, env.clone()) {
                        env.entry(k).or_insert(chain);
                    }
                }
                env
            }
        }
    }

    fn stmt(&mut self, env: &mut Env, lo: usize, hi: usize) {
        let toks = &self.lx.toks;
        let hi = hi.min(toks.len());
        let mut a = lo;
        while a < hi {
            let mut depth = 0i32;
            let mut b = a;
            while b < hi {
                match toks[b].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth == 0 => break,
                    _ => {}
                }
                b += 1;
            }
            if a < b {
                self.sinks(env, a, b);
                self.binding(env, a, b);
            }
            a = b + 1;
        }
    }

    fn sinks(&mut self, env: &Env, a: usize, b: usize) {
        let toks = &self.lx.toks;
        for i in a..b {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || !GC_SINKS.contains(&t.text.as_str())
                || toks.get(i + 1).is_none_or(|n| n.text != "(")
            {
                continue;
            }
            let close = cfg::matching(toks, i + 1, toks.len());
            let Some(chain) = self.expr_taint(env, i + 2, close) else {
                continue;
            };
            let key = (t.line, t.text.clone());
            if !self.reported.insert(key) {
                continue;
            }
            let steps: Vec<String> = chain
                .iter()
                .map(|(desc, line)| format!("{desc} (line {line})"))
                .collect();
            self.out.push(Finding {
                file: self.rel.to_string(),
                line: t.line,
                rule: Rule::P21,
                message: format!(
                    "GC floor derived from an *uncommitted* generation reaches \
                     `{}(…)`: {} → {}() — promote the snapshot to the committed \
                     ledger first, or a crash inside the window trims log bytes \
                     the fallback restart still needs",
                    t.text,
                    steps.join(" → "),
                    t.text,
                ),
                snippet: self.lx.snippet(t.line).to_string(),
                status: Status::New,
            });
        }
    }

    fn binding(&mut self, env: &mut Env, a: usize, b: usize) {
        let toks = &self.lx.toks;
        let Some((target, rhs)) = simple_binding(toks, a, b) else {
            return;
        };
        if rhs >= b {
            env.remove(&target);
            return;
        }
        match self.expr_taint(env, rhs, b) {
            Some(mut chain) => {
                if chain.last().map(|(d, _)| d.as_str()) != Some(&format!("`{target}`")) {
                    chain.push((format!("`{target}`"), toks[a].line));
                }
                env.insert(target, chain);
            }
            None => {
                env.remove(&target);
            }
        }
    }

    /// The leftmost pending-ledger taint in `[lo, hi)`: the `pending`
    /// field itself, or a binding carrying a value read from it.
    fn expr_taint(&self, env: &Env, lo: usize, hi: usize) -> Option<Chain> {
        let toks = &self.lx.toks;
        let hi = hi.min(toks.len());
        for t in &toks[lo..hi] {
            if t.kind != TokKind::Ident {
                continue;
            }
            if t.text == "pending" {
                return Some(vec![("the pending generation ledger".to_string(), t.line)]);
            }
            if let Some(chain) = env.get(&t.text) {
                return Some(chain.clone());
            }
        }
        None
    }
}

/// Run the S01 shard-isolation pass.
pub fn shard_isolation(views: &[(&str, &Lexed)]) -> Vec<Finding> {
    let Some(bi) = views
        .iter()
        .position(|(rel, _)| *rel == policy::SHARD_BOUNDARY)
    else {
        return Vec::new(); // no sharded kernel in this workspace
    };
    let mut out = Vec::new();
    let (_, blx) = views[bi];
    let btests = lexer::test_spans(blx);

    // Shard-local type names defined by the boundary file.
    let mut names: BTreeSet<&str> = BTreeSet::new();
    for (i, t) in blx.toks.iter().enumerate() {
        if matches!(t.text.as_str(), "struct" | "enum")
            && !lexer::in_spans(&btests, t.line)
            && blx
                .toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Ident)
        {
            let name = blx.toks[i + 1].text.as_str();
            if !policy::SHARD_EXPORTED.contains(&name) {
                names.insert(name);
            }
        }
    }

    // (a) The boundary file must not export shard-local items: a bare
    // `pub` item other than the allow-listed read-only exports.
    let mut i = 0;
    while i < blx.toks.len() {
        let t = &blx.toks[i];
        if t.text == "pub"
            && !lexer::in_spans(&btests, t.line)
            && blx.toks.get(i + 1).is_none_or(|n| n.text != "(")
        {
            let mut j = i + 1;
            while blx
                .toks
                .get(j)
                .is_some_and(|n| matches!(n.text.as_str(), "async" | "const" | "unsafe"))
            {
                j += 1;
            }
            if blx
                .toks
                .get(j)
                .is_some_and(|n| matches!(n.text.as_str(), "fn" | "struct" | "enum"))
            {
                if let Some(name) = blx.toks.get(j + 1) {
                    if !policy::SHARD_EXPORTED.contains(&name.text.as_str()) {
                        out.push(Finding {
                            file: views[bi].0.to_string(),
                            line: t.line,
                            rule: Rule::S01,
                            message: format!(
                                "shard-boundary item `{}` is exported `pub` — keep \
                                 shard-local state `pub(crate)` so only the merge \
                                 boundary can reach it",
                                name.text
                            ),
                            snippet: blx.snippet(t.line).to_string(),
                            status: Status::New,
                        });
                    }
                }
            }
        }
        i += 1;
    }

    // (b) Scope crates: shard-local types and the `.shards` arena are
    // reachable only through the merge boundary.
    for (rel, lx) in views {
        let scoped = crate_name(rel).is_some_and(|c| policy::SHARD_SCOPE_CRATES.contains(&c))
            && !policy::SHARD_MERGERS.contains(rel);
        if !scoped {
            continue;
        }
        let tests = lexer::test_spans(lx);
        for (i, t) in lx.toks.iter().enumerate() {
            if lexer::in_spans(&tests, t.line) {
                continue;
            }
            if t.kind == TokKind::Ident && names.contains(t.text.as_str()) {
                out.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: Rule::S01,
                    message: format!(
                        "shard-local type `{}` used outside the merge boundary \
                         ({}) — cross-shard state must flow through the \
                         merge/global-sequence path",
                        t.text,
                        policy::SHARD_MERGERS.join(", "),
                    ),
                    snippet: lx.snippet(t.line).to_string(),
                    status: Status::New,
                });
            }
            if t.text == "shards" && i >= 1 && lx.toks[i - 1].text == "." {
                out.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: Rule::S01,
                    message: "per-shard arena `.shards` accessed outside the merge \
                              boundary — shard heaps are private to the \
                              merge/global-sequence path"
                        .to_string(),
                    snippet: lx.snippet(t.line).to_string(),
                    status: Status::New,
                });
            }
        }
    }
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.message.as_str(),
        ))
    });
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out
}

fn crate_name(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}
