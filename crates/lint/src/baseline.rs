//! The committed baseline: grandfathered findings that do not fail CI.
//!
//! A baseline entry matches findings by `(file, rule, snippet)` — line
//! numbers are deliberately absent so unrelated edits above a grandfathered
//! line do not invalidate it, while any edit *to* the offending line does
//! (the snippet changes, the finding becomes new, and the author must fix
//! or re-justify it). Every entry carries a `note` saying why it is
//! tolerated. Unused entries are reported so the baseline only shrinks.

use std::collections::BTreeMap;

use gcr_json::Json;

use crate::report::{Finding, Status};

/// One grandfathered finding class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Workspace-relative path.
    pub file: String,
    /// Rule id (`D01`…).
    pub rule: String,
    /// Trimmed source line the finding sits on.
    pub snippet: String,
    /// How many findings with this key are waived (≥ 1).
    pub count: u64,
    /// Why this is tolerated.
    pub note: String,
}

/// The whole baseline file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parse the baseline JSON document.
    ///
    /// # Errors
    /// A message describing the parse or shape problem.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let v = Json::parse(text).map_err(|e| format!("baseline: {e}"))?;
        let version = v.get("version").and_then(Json::as_u64).unwrap_or(0);
        if version != 1 {
            return Err(format!("baseline: unsupported version {version}"));
        }
        let mut entries = Vec::new();
        let list = v
            .get("findings")
            .and_then(Json::as_arr)
            .ok_or("baseline: missing findings array")?;
        for e in list {
            let field = |k: &str| -> Result<String, String> {
                e.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline: entry missing `{k}`"))
            };
            entries.push(BaselineEntry {
                file: field("file")?,
                rule: field("rule")?,
                snippet: field("snippet")?,
                count: e.get("count").and_then(Json::as_u64).unwrap_or(1).max(1),
                note: field("note")?,
            });
        }
        Ok(Baseline { entries })
    }

    /// Serialize to the committed JSON form (pretty, stable order).
    pub fn dump(&self) -> String {
        let findings = self
            .entries
            .iter()
            .map(|e| {
                Json::obj([
                    ("file", Json::from(e.file.as_str())),
                    ("rule", Json::from(e.rule.as_str())),
                    ("snippet", Json::from(e.snippet.as_str())),
                    ("count", Json::from(e.count)),
                    ("note", Json::from(e.note.as_str())),
                ])
            })
            .collect::<Vec<_>>();
        Json::obj([
            ("version", Json::from(1u64)),
            ("findings", Json::from(findings)),
        ])
        .pretty()
    }

    /// Build a baseline that grandfathers exactly the given findings
    /// (`--update-baseline`). Notes are stamped as needing justification.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<(String, String, String), u64> = BTreeMap::new();
        for f in findings {
            *counts
                .entry((f.file.clone(), f.rule.id().to_string(), f.snippet.clone()))
                .or_insert(0) += 1;
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((file, rule, snippet), count)| BaselineEntry {
                    file,
                    rule,
                    snippet,
                    count,
                    note: "TODO: justify or fix".to_string(),
                })
                .collect(),
        }
    }

    /// Rebuild the baseline from the current findings
    /// (`--update-baseline`): entries whose `(file, rule, snippet)` key
    /// still matches keep their note (and get the fresh count); entries
    /// that no longer match anything are *pruned* instead of silently
    /// carried forever. Returns the refreshed baseline and one human
    /// description per pruned entry.
    pub fn refresh(&self, findings: &[Finding]) -> (Baseline, Vec<String>) {
        let mut fresh = Baseline::from_findings(findings);
        let mut old: BTreeMap<(String, String, String), String> = self
            .entries
            .iter()
            .map(|e| {
                (
                    (e.file.clone(), e.rule.clone(), e.snippet.clone()),
                    e.note.clone(),
                )
            })
            .collect();
        for e in &mut fresh.entries {
            let key = (e.file.clone(), e.rule.clone(), e.snippet.clone());
            if let Some(note) = old.remove(&key) {
                e.note = note;
            }
        }
        let pruned = old
            .into_keys()
            .map(|(file, rule, snippet)| {
                format!("{file}: {rule} `{snippet}` — stale (no longer matches any finding)")
            })
            .collect();
        (fresh, pruned)
    }

    /// Mark findings covered by this baseline as [`Status::Baselined`].
    /// Returns human descriptions of entries (or residual counts) that
    /// matched nothing.
    pub fn apply(&self, findings: &mut [Finding]) -> Vec<String> {
        let mut remaining: BTreeMap<(String, String, String), u64> = BTreeMap::new();
        for e in &self.entries {
            *remaining
                .entry((e.file.clone(), e.rule.clone(), e.snippet.clone()))
                .or_insert(0) += e.count;
        }
        for f in findings.iter_mut() {
            let key = (f.file.clone(), f.rule.id().to_string(), f.snippet.clone());
            if let Some(n) = remaining.get_mut(&key) {
                if *n > 0 {
                    *n -= 1;
                    f.status = Status::Baselined;
                }
            }
        }
        remaining
            .into_iter()
            .filter(|&(_, n)| n > 0)
            .map(|((file, rule, snippet), n)| {
                format!("{file}: {rule} `{snippet}` (unmatched ×{n})")
            })
            .collect()
    }
}
