//! The workspace symbol index: functions (free, inherent, trait),
//! enums and consts per module, extracted from the surface lexer's token
//! stream. This is the foundation the call graph ([`crate::callgraph`])
//! and the semantic passes ([`crate::semantic`]) stand on.
//!
//! It is an *approximate* index by design (no type inference, no macro
//! expansion): items are recognized by their introducing keyword and
//! brace/paren matching, impl/trait blocks give methods an owner type
//! name, and `#[cfg(test)]` spans are excluded entirely so test helpers
//! never alias live code.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{in_spans, test_spans, Lexed, TokKind};

/// One indexed function (or method) definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index of the defining file in the workspace file list.
    pub file: usize,
    /// Bare name (`restart_rank`, `ctrl_send`, …).
    pub name: String,
    /// Enclosing `impl`/`trait` type name, when any.
    pub owner: Option<String>,
    /// Does the parameter list start with a `self` receiver?
    pub is_method: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token range of the body: `(open_brace_idx, close_brace_idx)`,
    /// exclusive of the braces themselves when iterated `open+1..close`.
    /// `None` for bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Return-type tokens (empty for `-> ()` elided returns).
    pub ret: Vec<String>,
    /// Defining crate (`core`, `mpi`, …; `""` for the root package).
    pub krate: String,
}

impl FnDef {
    /// `Type::name` or `name`, for witness chains in messages.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}::{}", o, self.name),
            None => self.name.clone(),
        }
    }

    /// The error-type name if the return type is `Result<_, E>`;
    /// `None` for non-`Result` returns or bare `Result` aliases.
    pub fn result_err(&self) -> Option<&str> {
        let r = self.ret.iter().position(|t| t == "Result")?;
        // Walk `Result < ok , err >` at angle depth 1: the error type is
        // the last path segment before the `>` that closes the generics.
        let mut depth = 0usize;
        let mut after_comma = false;
        let mut err: Option<&str> = None;
        for t in &self.ret[r + 1..] {
            match t.as_str() {
                "<" => depth += 1,
                ">" => {
                    if depth == 1 && after_comma {
                        return err;
                    }
                    depth = depth.saturating_sub(1);
                }
                "," if depth == 1 => after_comma = true,
                _ => {
                    if depth == 1
                        && after_comma
                        && t.chars().next().is_some_and(char::is_alphabetic)
                    {
                        err = Some(t);
                    }
                }
            }
        }
        None
    }
}

/// One indexed enum definition.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
    /// Defining crate.
    pub krate: String,
}

/// One indexed const definition.
#[derive(Debug, Clone)]
pub struct ConstDef {
    /// Index of the defining file.
    pub file: usize,
    /// Const name.
    pub name: String,
    /// Innermost enclosing `mod` name (`""` at file top level).
    pub module: String,
    /// 1-based line.
    pub line: usize,
    /// Defining crate.
    pub krate: String,
}

/// The whole workspace's symbols.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    /// All indexed functions; ids are indices into this vec.
    pub fns: Vec<FnDef>,
    /// All indexed enums.
    pub enums: Vec<EnumDef>,
    /// All indexed consts.
    pub consts: Vec<ConstDef>,
    /// Function ids by bare name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Every type name the workspace implements something on (impl-block
    /// owners plus enum names). A `Type::assoc()` call whose qualifier is
    /// *not* in this set is a std/external type, not an unresolved one.
    pub owners: BTreeSet<String>,
}

/// The crate a workspace-relative path belongs to (`""` for root `src/`).
pub fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|rest| rest.split_once('/'))
        .map(|(name, _)| name.to_string())
        .unwrap_or_default()
}

/// Keywords that introduce or qualify items — never call or index names.
pub(crate) const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "in", "match", "return", "loop", "break", "continue", "as",
    "move", "ref", "mut", "let", "fn", "impl", "trait", "struct", "enum", "mod", "use", "pub",
    "const", "static", "where", "unsafe", "async", "await", "dyn", "box", "type", "self", "Self",
    "super", "crate", "true", "false", "extern", "yield",
];

/// Build the index over every workspace file (`(rel, lexed)` pairs).
pub fn build(files: &[(&str, &Lexed)]) -> SymbolIndex {
    let mut ix = SymbolIndex::default();
    for (file_idx, (rel, lx)) in files.iter().enumerate() {
        index_file(&mut ix, file_idx, rel, lx);
    }
    for (id, f) in ix.fns.iter().enumerate() {
        ix.by_name.entry(f.name.clone()).or_default().push(id);
    }
    let owners: BTreeSet<String> = ix
        .fns
        .iter()
        .filter_map(|f| f.owner.clone())
        .chain(ix.enums.iter().map(|e| e.name.clone()))
        .collect();
    ix.owners = owners;
    ix
}

fn index_file(ix: &mut SymbolIndex, file_idx: usize, rel: &str, lx: &Lexed) {
    let toks = &lx.toks;
    let tests = test_spans(lx);
    let krate = crate_of(rel);
    // Owner contexts: (brace depth the block's body lives at, type name).
    let mut owners: Vec<(usize, String)> = Vec::new();
    let mut mods: Vec<(usize, String)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => {
                depth += 1;
                i += 1;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                owners.retain(|&(d, _)| d <= depth);
                mods.retain(|&(d, _)| d <= depth);
                i += 1;
            }
            "impl" | "trait" if t.kind == TokKind::Ident => {
                if let Some((name, open)) = impl_owner(toks, i) {
                    owners.push((depth + 1, name));
                    depth += 1;
                    i = open + 1;
                } else {
                    i += 1;
                }
            }
            "mod" if t.kind == TokKind::Ident => {
                // `mod name {` opens a module scope; `mod name;` doesn't.
                if let (Some(n), Some(b)) = (toks.get(i + 1), toks.get(i + 2)) {
                    if n.kind == TokKind::Ident && b.text == "{" {
                        mods.push((depth + 1, n.text.clone()));
                        depth += 1;
                        i += 3;
                        continue;
                    }
                }
                i += 1;
            }
            "fn" if t.kind == TokKind::Ident => {
                if in_spans(&tests, t.line) {
                    i += 1;
                    continue;
                }
                match parse_fn(toks, i) {
                    Some(parsed) => {
                        let owner = owners.last().map(|(_, n)| n.clone());
                        ix.fns.push(FnDef {
                            file: file_idx,
                            name: parsed.name,
                            owner,
                            is_method: parsed.is_method,
                            line: t.line,
                            body: parsed.body,
                            ret: parsed.ret,
                            krate: krate.clone(),
                        });
                        // Skip the signature but *enter* the body, so
                        // nested items are still seen; depth tracking
                        // continues naturally at the `{`.
                        i = parsed.resume;
                    }
                    None => i += 1,
                }
            }
            "enum" if t.kind == TokKind::Ident && !in_spans(&tests, t.line) => {
                if let Some((def, resume)) = parse_enum(toks, i, &krate) {
                    ix.enums.push(def);
                    i = resume;
                } else {
                    i += 1;
                }
            }
            "const" if t.kind == TokKind::Ident && !in_spans(&tests, t.line) => {
                // `const NAME :` — not `const fn` and not `*const T`.
                let named = toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident && n.text != "fn" && n.text != "_")
                    && toks.get(i + 2).is_some_and(|c| c.text == ":");
                let raw_ptr = i > 0 && toks[i - 1].text == "*";
                if named && !raw_ptr {
                    ix.consts.push(ConstDef {
                        file: file_idx,
                        name: toks[i + 1].text.clone(),
                        module: mods.last().map(|(_, n)| n.clone()).unwrap_or_default(),
                        line: t.line,
                        krate: krate.clone(),
                    });
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// From an `impl`/`trait` keyword, the owner type name and the index of
/// the block's opening `{`. For `impl Trait for Type` the owner is
/// `Type`; for `impl Type` and `trait Name` it is the first identifier
/// after any generic parameter list.
fn impl_owner(toks: &[crate::lexer::Tok], at: usize) -> Option<(String, usize)> {
    let mut j = at + 1;
    // Skip `<...>` generic params right after the keyword.
    if toks.get(j).is_some_and(|t| t.text == "<") {
        let mut d = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => d += 1,
                ">" => {
                    d -= 1;
                    if d == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    let mut name: Option<String> = None;
    let mut after_for = false;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "{" => return name.map(|n| (n, j)),
            ";" => return None, // `trait X: Y;`-style or parse confusion
            "for" => {
                after_for = true;
                name = None;
            }
            _ if t.kind == TokKind::Ident
                && !KEYWORDS.contains(&t.text.as_str())
                && (name.is_none() || after_for) =>
            {
                // Keep the *last* path segment: `impl gc::Store` → Store.
                let is_path_seg = toks.get(j + 1).is_some_and(|n| n.text == ":")
                    && toks.get(j + 2).is_some_and(|n| n.text == ":");
                if !is_path_seg {
                    name = Some(t.text.clone());
                    after_for = false;
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

struct ParsedFn {
    name: String,
    is_method: bool,
    body: Option<(usize, usize)>,
    ret: Vec<String>,
    /// Token index to resume the item scan at (start of the body for
    /// brace-bodied fns, so nested items are indexed too).
    resume: usize,
}

fn parse_fn(toks: &[crate::lexer::Tok], at: usize) -> Option<ParsedFn> {
    let name_tok = toks.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None; // `fn(u32) -> u32` pointer type
    }
    let name = name_tok.text.clone();
    let mut j = at + 2;
    // Generic params.
    if toks.get(j).is_some_and(|t| t.text == "<") {
        let mut d = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => d += 1,
                ">" => {
                    d -= 1;
                    if d == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    if toks.get(j).is_none_or(|t| t.text != "(") {
        return None;
    }
    // Parameter list; `self` anywhere before the first top-level comma
    // makes it a method (`&self`, `&mut self`, `self`, `self: Rc<Self>`).
    let open_paren = j;
    let mut d = 0i32;
    let mut is_method = false;
    let mut seen_comma = false;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => d += 1,
            ")" => {
                d -= 1;
                if d == 0 {
                    break;
                }
            }
            "," if d == 1 => seen_comma = true,
            "self" if d == 1 && !seen_comma && j > open_paren => is_method = true,
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    j += 1; // past `)`
            // Return type and body/`;`.
    let mut ret = Vec::new();
    let mut in_ret = false;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "{" => {
                let close = match_brace(toks, j)?;
                // Resume AT the `{` so the item scan's own brace-depth
                // tracking stays consistent while it walks the body.
                return Some(ParsedFn {
                    name,
                    is_method,
                    body: Some((j, close)),
                    ret,
                    resume: j,
                });
            }
            ";" => {
                return Some(ParsedFn {
                    name,
                    is_method,
                    body: None,
                    ret,
                    resume: j + 1,
                });
            }
            "-" if toks.get(j + 1).is_some_and(|n| n.text == ">") => {
                in_ret = true;
                j += 2;
                continue;
            }
            "where" => in_ret = false,
            _ => {
                if in_ret {
                    ret.push(t.text.clone());
                }
            }
        }
        j += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[crate::lexer::Tok], open: usize) -> Option<usize> {
    let mut d = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => d += 1,
            "}" => {
                d -= 1;
                if d == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

fn parse_enum(toks: &[crate::lexer::Tok], at: usize, krate: &str) -> Option<(EnumDef, usize)> {
    let name_tok = toks.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Find the body `{` (skipping generics / where clauses).
    let mut j = at + 2;
    while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
        j += 1;
    }
    if toks.get(j).is_none_or(|t| t.text != "{") {
        return None;
    }
    let open = j;
    let close = match_brace(toks, open)?;
    let mut variants = Vec::new();
    let mut d = 0i32;
    let mut expect_variant = true;
    let mut k = open;
    while k <= close {
        let t = &toks[k];
        match t.text.as_str() {
            "{" | "(" | "[" => d += 1,
            "}" | ")" | "]" => d -= 1,
            "," if d == 1 => expect_variant = true,
            "#" => {}
            _ if t.kind == TokKind::Ident && d == 1 && expect_variant => {
                variants.push(t.text.clone());
                expect_variant = false;
            }
            _ => {}
        }
        k += 1;
    }
    Some((
        EnumDef {
            name: name_tok.text.clone(),
            variants,
            krate: krate.to_string(),
        },
        close + 1,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn index_one(src: &str) -> SymbolIndex {
        let lx = lex(src);
        build(&[("crates/core/src/x.rs", &lx)])
    }

    #[test]
    fn fns_methods_and_owners_are_indexed() {
        let ix = index_one(
            "pub fn free(a: u32) -> Result<(), RecoveryError> { Ok(()) }\n\
             struct S;\n\
             impl S {\n    pub fn new() -> S { S }\n    fn go(&mut self, n: u32) {}\n}\n\
             trait T {\n    fn hook(&self) { }\n    fn decl(&self);\n}\n",
        );
        let names: Vec<_> = ix.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, ["free", "S::new", "S::go", "T::hook", "T::decl"]);
        assert!(!ix.fns[1].is_method);
        assert!(ix.fns[2].is_method);
        assert!(ix.fns[4].body.is_none());
        assert_eq!(ix.fns[0].result_err(), Some("RecoveryError"));
        assert_eq!(ix.fns[1].result_err(), None);
    }

    #[test]
    fn impl_trait_for_type_owns_by_type() {
        let ix = index_one("impl Drop for Gate { fn drop(&mut self) {} }\n");
        assert_eq!(ix.fns[0].qualified(), "Gate::drop");
    }

    #[test]
    fn enums_consts_and_modules_are_indexed() {
        let ix = index_one(
            "pub mod tags {\n    pub const BOOKMARK: u64 = 1;\n}\n\
             const TOP: u32 = 0;\n\
             pub enum Phase { Idle, Draining(u32), Done { at: u64 } }\n",
        );
        assert_eq!(ix.consts[0].name, "BOOKMARK");
        assert_eq!(ix.consts[0].module, "tags");
        assert_eq!(ix.consts[1].module, "");
        assert_eq!(ix.enums[0].name, "Phase");
        assert_eq!(ix.enums[0].variants, ["Idle", "Draining", "Done"]);
    }

    #[test]
    fn test_spans_are_excluded_from_the_index() {
        let ix = index_one("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n");
        assert_eq!(ix.fns.len(), 1);
        assert_eq!(ix.fns[0].name, "live");
    }

    #[test]
    fn nested_generic_result_err_is_extracted() {
        let ix =
            index_one("fn f() -> Result<Vec<(u32, u64)>, gcr_net::StorageError> { Ok(vec![]) }\n");
        assert_eq!(ix.fns[0].result_err(), Some("StorageError"));
    }
}
