//! Incremental-cache behavior: hits replay byte-identical reports,
//! edits invalidate exactly as content changes, and the per-file tier
//! keeps unchanged files cached across a workspace-level miss.

use std::fs;
use std::path::PathBuf;

use gcr_lint::cache::lint_workspace_cached;
use gcr_lint::Baseline;

/// A throwaway workspace root with one deterministic-crate source file.
fn scratch(name: &str, src: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("gcr-lint-cache-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("crates/sim/src")).expect("scratch tree");
    fs::write(root.join("crates/sim/src/lib.rs"), src).expect("scratch source");
    root
}

const CLEAN: &str = "pub fn f() -> u64 { 7 }\n";
const DIRTY: &str = "pub fn f() -> u64 { let t = std::time::Instant::now(); 7 }\n";

#[test]
fn warm_run_hits_and_replays_the_exact_report() {
    let root = scratch("hit", CLEAN);
    let cache = root.join("target/lint-cache");
    let baseline = Baseline::default();
    let (cold, s0) = lint_workspace_cached(&root, &baseline, &cache).expect("cold");
    assert!(!s0.hit);
    assert_eq!(s0.file_misses, 1);
    let (warm, s1) = lint_workspace_cached(&root, &baseline, &cache).expect("warm");
    assert!(s1.hit, "unchanged tree must hit the workspace artifact");
    assert_eq!(
        cold.to_json().pretty(),
        warm.to_json().pretty(),
        "cache replay must be lossless"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn an_edit_invalidates_and_the_new_findings_appear() {
    let root = scratch("edit", CLEAN);
    let cache = root.join("target/lint-cache");
    let baseline = Baseline::default();
    let (cold, _) = lint_workspace_cached(&root, &baseline, &cache).expect("cold");
    assert!(cold.passed(), "the clean source must lint clean");

    fs::write(root.join("crates/sim/src/lib.rs"), DIRTY).expect("edit");
    let (edited, stats) = lint_workspace_cached(&root, &baseline, &cache).expect("edited");
    assert!(
        !stats.hit,
        "a content edit must miss the workspace artifact"
    );
    assert_eq!(stats.file_misses, 1, "the edited file must re-lint");
    assert!(
        edited
            .findings
            .iter()
            .any(|f| f.rule == gcr_lint::Rule::D02),
        "the wall-clock read must surface after the edit: {:#?}",
        edited.findings
    );

    // Reverting restores the original key: full workspace hit again.
    fs::write(root.join("crates/sim/src/lib.rs"), CLEAN).expect("revert");
    let (reverted, s2) = lint_workspace_cached(&root, &baseline, &cache).expect("reverted");
    assert!(s2.hit, "reverting must hit the original artifact");
    assert_eq!(cold.to_json().pretty(), reverted.to_json().pretty());
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn unchanged_files_stay_cached_across_a_workspace_miss() {
    let root = scratch("tier", CLEAN);
    fs::write(root.join("crates/sim/src/other.rs"), "pub fn g() {}\n").expect("second file");
    let cache = root.join("target/lint-cache");
    let baseline = Baseline::default();
    let (_, s0) = lint_workspace_cached(&root, &baseline, &cache).expect("cold");
    assert_eq!((s0.file_hits, s0.file_misses), (0, 2));

    fs::write(
        root.join("crates/sim/src/other.rs"),
        "pub fn g() -> u64 { 1 }\n",
    )
    .expect("edit");
    let (_, s1) = lint_workspace_cached(&root, &baseline, &cache).expect("edited");
    assert!(!s1.hit);
    assert_eq!(
        (s1.file_hits, s1.file_misses),
        (1, 1),
        "only the edited file may re-lint through the local rules"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn a_baseline_change_invalidates_the_workspace_artifact() {
    let root = scratch("baseline", DIRTY);
    let cache = root.join("target/lint-cache");
    let (report, _) = lint_workspace_cached(&root, &Baseline::default(), &cache).expect("cold");
    assert!(!report.passed());

    let grandfathered = Baseline::from_findings(&report.findings);
    let (rebased, stats) = lint_workspace_cached(&root, &grandfathered, &cache).expect("rebased");
    assert!(!stats.hit, "a baseline change must miss the workspace tier");
    assert!(stats.file_hits > 0, "file tier is baseline-independent");
    assert!(rebased.passed(), "grandfathered findings must not fail");
    let _ = fs::remove_dir_all(&root);
}
