//! Fixture tests for the workspace semantic passes (D03-T, E01–E03,
//! P01/P02), driven through [`gcr_lint::lint_files`] with synthetic
//! multi-file workspaces. Paths are chosen so the policy tiers resolve
//! the way each scenario needs (recovery-critical roots live in
//! `crates/core/src/restart.rs`, helpers in other workspace crates).

use gcr_lint::{lint_files, Baseline, Rule};

fn ws(files: &[(&str, &str)]) -> Vec<(String, String)> {
    files
        .iter()
        .map(|(r, s)| (r.to_string(), s.to_string()))
        .collect()
}

fn run(files: &[(&str, &str)]) -> gcr_lint::Report {
    lint_files(&ws(files), &Baseline::default())
}

fn rules_of(rep: &gcr_lint::Report) -> Vec<(String, usize, Rule)> {
    rep.findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule))
        .collect()
}

// ---------------------------------------------------------------- D03-T

#[test]
fn d03t_fires_through_a_cross_crate_chain() {
    let rep = run(&[
        (
            "crates/core/src/restart.rs",
            "use x::helper;\npub fn restart() { helper(0); }\n",
        ),
        (
            "crates/net/src/storage.rs",
            "pub fn helper(n: usize) { inner(n); }\nfn inner(n: usize) { let v = vec![1]; let _x = v[n]; }\n",
        ),
    ]);
    let d03t: Vec<_> = rep
        .findings
        .iter()
        .filter(|f| f.rule == Rule::D03T)
        .collect();
    assert_eq!(d03t.len(), 1, "{:?}", rules_of(&rep));
    assert_eq!(d03t[0].file, "crates/core/src/restart.rs");
    assert_eq!(d03t[0].line, 2);
    assert!(d03t[0].message.contains("`helper`"), "{}", d03t[0].message);
    assert!(d03t[0].message.contains("`inner`"), "{}", d03t[0].message);
}

#[test]
fn d03t_quiet_when_no_callee_panics() {
    let rep = run(&[
        (
            "crates/core/src/restart.rs",
            "pub fn restart() { helper(); }\n",
        ),
        (
            "crates/net/src/other.rs",
            "pub fn helper() -> Option<u32> { Some(1) }\n",
        ),
    ]);
    assert!(
        rep.findings.iter().all(|f| f.rule != Rule::D03T),
        "{:?}",
        rules_of(&rep)
    );
}

#[test]
fn d03t_quiet_when_the_panic_is_outside_the_scope_crates() {
    // `sim` is not in D03T_SCOPE_CRATES: the call is a trusted boundary.
    let rep = run(&[
        (
            "crates/core/src/restart.rs",
            "pub fn restart() { kernel_step(); }\n",
        ),
        (
            "crates/sim/src/exec.rs",
            "pub fn kernel_step() { panic!(\"kernel bug\"); }\n",
        ),
    ]);
    assert!(
        rep.findings.iter().all(|f| f.rule != Rule::D03T),
        "{:?}",
        rules_of(&rep)
    );
}

#[test]
fn d03t_honors_a_trust_directive_and_reports_it_stale_when_unused() {
    let trusted = "// gcr-lint: trust(D03-T) table sized at construction\n\
                   pub fn helper(n: usize) { let v = vec![1]; let _x = v[n]; }\n";
    let rep = run(&[
        (
            "crates/core/src/restart.rs",
            "pub fn restart() { helper(0); }\n",
        ),
        ("crates/net/src/storage.rs", trusted),
    ]);
    assert!(
        rep.findings.is_empty(),
        "trusted file's panics are certified: {:?}",
        rules_of(&rep)
    );

    // The same directive on a panic-free file is stale (W00).
    let rep = run(&[(
        "crates/net/src/storage.rs",
        "// gcr-lint: trust(D03-T) nothing here\npub fn helper() {}\n",
    )]);
    assert_eq!(
        rules_of(&rep),
        vec![("crates/net/src/storage.rs".into(), 1, Rule::W00)]
    );
}

#[test]
fn d03t_call_site_waiver_suppresses_and_is_tracked() {
    let rep = run(&[
        (
            "crates/core/src/restart.rs",
            "pub fn restart() {\n    // gcr-lint: allow(D03-T) guarded by resize above\n    helper(0);\n}\n",
        ),
        (
            "crates/net/src/storage.rs",
            "pub fn helper(n: usize) { let v = vec![1]; let _x = v[n]; }\n",
        ),
    ]);
    assert!(
        rep.findings.is_empty(),
        "waived call site, waiver used: {:?}",
        rules_of(&rep)
    );
}

// --------------------------------------------------------------- E-rules

#[test]
fn e01_fires_on_let_underscore_of_a_protocol_result() {
    let rep = run(&[
        (
            "crates/core/src/a.rs",
            "pub fn go() { let _ = fallible(); }\n",
        ),
        (
            "crates/net/src/err.rs",
            "pub struct StorageError;\npub fn fallible() -> Result<u32, StorageError> { Ok(1) }\n",
        ),
    ]);
    assert_eq!(
        rules_of(&rep),
        vec![("crates/core/src/a.rs".into(), 1, Rule::E01)]
    );
    assert!(rep.findings[0].message.contains("StorageError"));
}

#[test]
fn e01_quiet_on_non_protocol_results_and_handled_errors() {
    let rep = run(&[
        (
            "crates/core/src/a.rs",
            "pub fn go() -> Result<(), ParseError> { let _ = local_only(); fallible()?; Ok(()) }\n\
             fn local_only() -> u32 { 3 }\n",
        ),
        (
            "crates/trace/src/err.rs",
            "pub struct ParseError;\npub fn fallible() -> Result<u32, ParseError> { Ok(1) }\n",
        ),
    ]);
    assert!(rep.findings.is_empty(), "{:?}", rules_of(&rep));
}

#[test]
fn e02_fires_on_statement_level_ok() {
    let rep = run(&[
        (
            "crates/core/src/a.rs",
            "pub fn go() {\n    fallible().ok();\n}\n",
        ),
        (
            "crates/core/src/err.rs",
            "pub struct RecoveryError;\npub fn fallible() -> Result<u32, RecoveryError> { Ok(1) }\n",
        ),
    ]);
    assert_eq!(
        rules_of(&rep),
        vec![("crates/core/src/a.rs".into(), 2, Rule::E02)]
    );
}

#[test]
fn e02_quiet_when_the_option_is_consumed() {
    let rep = run(&[
        (
            "crates/core/src/a.rs",
            "pub fn go() -> Option<u32> {\n    fallible().ok()\n}\n",
        ),
        (
            "crates/core/src/err.rs",
            "pub struct RecoveryError;\npub fn fallible() -> Result<u32, RecoveryError> { Ok(1) }\n",
        ),
    ]);
    assert!(rep.findings.is_empty(), "{:?}", rules_of(&rep));
}

#[test]
fn e03_fires_on_unwrap_or_default_over_a_protocol_result() {
    let rep = run(&[
        (
            "crates/core/src/a.rs",
            "pub fn go() -> u32 {\n    fallible().unwrap_or_default()\n}\n",
        ),
        (
            "crates/core/src/err.rs",
            "pub struct RecoveryError;\npub fn fallible() -> Result<u32, RecoveryError> { Ok(1) }\n",
        ),
    ]);
    assert_eq!(
        rules_of(&rep),
        vec![("crates/core/src/a.rs".into(), 2, Rule::E03)]
    );
}

// --------------------------------------------------------------- P-rules

#[test]
fn p01_fires_on_a_send_only_tag_and_names_the_missing_side() {
    let rep = run(&[(
        "crates/core/src/ctrl.rs",
        "pub mod tags { pub const MARKER: u64 = 1; pub const ACK: u64 = 2; }\n\
         pub fn a(x: &X) {\n    x.ctrl_send(tags::MARKER);\n    x.ctrl_send(tags::ACK);\n}\n\
         pub fn b(x: &X) {\n    x.ctrl_recv(tags::ACK);\n}\n",
    )]);
    assert_eq!(
        rules_of(&rep),
        vec![("crates/core/src/ctrl.rs".into(), 3, Rule::P01)]
    );
    assert!(rep.findings[0].message.contains("ctrl_recv"));
    assert!(rep.findings[0].message.contains("MARKER"));
}

#[test]
fn p01_quiet_when_paired_or_routed_through_a_helper() {
    let rep = run(&[(
        "crates/core/src/ctrl.rs",
        "pub mod tags { pub const BARRIER: u64 = 1; }\n\
         pub fn a(x: &X) {\n    ctrl_barrier(x, tags::BARRIER);\n}\n",
    )]);
    // The helper use makes pairing the helper's contract — no finding.
    assert!(rep.findings.is_empty(), "{:?}", rules_of(&rep));
}

#[test]
fn p02_fires_on_wildcard_over_a_protocol_enum_in_recovery_critical_code() {
    let rep = run(&[
        (
            "crates/core/src/restart.rs",
            "pub fn go(s: State) -> u32 {\n    match s {\n        State::Up => 1,\n        _ => 0,\n    }\n}\n",
        ),
        (
            "crates/mpi/src/state.rs",
            "pub enum State { Up, Down, Draining }\n",
        ),
    ]);
    assert_eq!(
        rules_of(&rep),
        vec![("crates/core/src/restart.rs".into(), 2, Rule::P02)]
    );
}

#[test]
fn p02_quiet_on_exhaustive_matches_and_outside_recovery_files() {
    let exhaustive = "pub fn go(s: State) -> u32 {\n    match s {\n        State::Up => 1,\n        State::Down | State::Draining => 0,\n    }\n}\n";
    let wildcarded = "pub fn go(s: State) -> u32 {\n    match s {\n        State::Up => 1,\n        _ => 0,\n    }\n}\n";
    let enum_def = (
        "crates/mpi/src/state.rs",
        "pub enum State { Up, Down, Draining }\n",
    );

    let rep = run(&[("crates/core/src/restart.rs", exhaustive), enum_def]);
    assert!(rep.findings.is_empty(), "{:?}", rules_of(&rep));

    // Same wildcard match outside a recovery-critical file: out of scope.
    let rep = run(&[("crates/core/src/other.rs", wildcarded), enum_def]);
    assert!(rep.findings.is_empty(), "{:?}", rules_of(&rep));
}

// ------------------------------------------------------------- reporting

#[test]
fn graph_stats_flow_into_json_and_human_output() {
    let rep = run(&[(
        "crates/core/src/a.rs",
        "pub fn a() { b(); }\npub fn b() {}\n",
    )]);
    let g = rep.graph.as_ref().expect("graph stats");
    assert_eq!((g.functions, g.call_sites, g.resolved), (2, 1, 1));
    let json = rep.to_json().dump();
    assert!(json.contains("\"callgraph\""), "{json}");
    assert!(json.contains("\"resolution_rate\":\"1.0000\""), "{json}");
    assert!(
        rep.human().contains("call graph: 2 fn(s)"),
        "{}",
        rep.human()
    );
}
