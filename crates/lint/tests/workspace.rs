//! Tier-1 gate: the live workspace must lint clean against the committed
//! baseline. This is the test that keeps nondeterminism from re-entering:
//! a new HashMap iteration, wall-clock read, or recovery-path unwrap
//! anywhere in the deterministic crates fails the build right here.

use std::path::Path;

use gcr_lint::{lint_workspace, load_baseline};

/// The workspace root, two levels up from this crate's manifest.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

#[test]
fn live_workspace_has_zero_non_baseline_findings() {
    let root = workspace_root();
    let baseline = load_baseline(&root.join("lint-baseline.json")).expect("baseline must parse");
    let report = lint_workspace(root, &baseline).expect("workspace must be readable");
    assert!(
        report.passed(),
        "gcr-lint found new issues:\n{}",
        report.human()
    );
    assert!(
        report.unused_baseline.is_empty(),
        "baseline entries matching nothing should be removed:\n{}",
        report.human()
    );
    // Sanity: the walk actually saw the workspace, not an empty dir.
    assert!(
        report.files_scanned > 50,
        "only {} files",
        report.files_scanned
    );
}

#[test]
fn every_protocol_phase_spec_is_active_on_the_live_workspace() {
    // Zero P10 findings is only meaningful if every spec actually bound
    // to its entry point: a renamed/moved protocol fn would otherwise
    // silently deactivate its spec and pass vacuously.
    let root = workspace_root();
    let files = gcr_lint::collect_workspace_files(root).expect("workspace must be readable");
    let lexed: Vec<_> = files
        .iter()
        .map(|(_, src)| gcr_lint::lexer::lex(src))
        .collect();
    let views: Vec<(&str, &gcr_lint::lexer::Lexed)> = files
        .iter()
        .zip(&lexed)
        .map(|((rel, _), lx)| (rel.as_str(), lx))
        .collect();
    let index = gcr_lint::symbols::build(&views);
    let active = gcr_lint::phases::active_specs(&index, &views);
    for spec in gcr_lint::phases::SPECS {
        assert!(
            active.contains(&spec.protocol),
            "spec `{}` lost its entry `{}` in {} — update the spec table \
             alongside the protocol",
            spec.protocol,
            spec.entry,
            spec.entry_file
        );
    }
}

#[test]
fn every_protocol_mode_is_bound_to_a_live_session_table() {
    // Zero P20 findings is only meaningful if every `Mode` variant bound
    // to a fully-live session table. This also auto-enrolls protocol #8:
    // adding a variant without registering its wave/restart/serve
    // entries in session.rs fails right here (and fires P20 itself).
    let root = workspace_root();
    let files = gcr_lint::collect_workspace_files(root).expect("workspace must be readable");
    let lexed: Vec<_> = files
        .iter()
        .map(|(_, src)| gcr_lint::lexer::lex(src))
        .collect();
    let views: Vec<(&str, &gcr_lint::lexer::Lexed)> = files
        .iter()
        .zip(&lexed)
        .map(|((rel, _), lx)| (rel.as_str(), lx))
        .collect();
    let index = gcr_lint::symbols::build(&views);
    let active = gcr_lint::session::active_modes(&index, &views);
    let mode = index
        .enums
        .iter()
        .find(|e| e.name == "Mode" && e.krate == "core")
        .expect("the core crate defines the protocol Mode enum");
    assert!(!mode.variants.is_empty(), "Mode enum lost its variants");
    for v in &mode.variants {
        assert!(
            active.contains(&v.as_str()),
            "protocol mode `{v}` has no fully-live session table — \
             register its entries in crates/lint/src/session.rs"
        );
    }
    // And the wire pairs still bind, or W10 passes vacuously.
    let pairs = gcr_lint::wire::active_pairs(&index, &views);
    for spec in gcr_lint::wire::WIRE_SPECS {
        assert!(
            pairs.contains(&spec.name),
            "wire pair `{}` lost `{}`/`{}` in {} — update the pair table \
             alongside the codec",
            spec.name,
            spec.encoder,
            spec.decoder,
            spec.file
        );
    }
}

#[test]
fn call_graph_resolves_enough_of_the_live_workspace() {
    let root = workspace_root();
    let report =
        lint_workspace(root, &gcr_lint::Baseline::default()).expect("workspace must be readable");
    let g = report
        .graph
        .expect("workspace lint always builds the graph");
    // The semantic passes are only as good as the graph under them: if
    // resolution decays (lexer drift, new call idioms), D03-T silently
    // loses edges. Keep the floor explicit.
    assert!(
        g.resolution_rate() >= 0.95,
        "call-graph resolution degraded: {} of {} sites ({:.1}%) — {} ambiguous",
        g.resolved + g.external,
        g.call_sites,
        g.resolution_rate() * 100.0,
        g.ambiguous
    );
    assert!(g.functions > 500, "index saw only {} fns", g.functions);
}
