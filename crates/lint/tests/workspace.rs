//! Tier-1 gate: the live workspace must lint clean against the committed
//! baseline. This is the test that keeps nondeterminism from re-entering:
//! a new HashMap iteration, wall-clock read, or recovery-path unwrap
//! anywhere in the deterministic crates fails the build right here.

use std::path::Path;

use gcr_lint::{lint_workspace, load_baseline};

/// The workspace root, two levels up from this crate's manifest.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

#[test]
fn live_workspace_has_zero_non_baseline_findings() {
    let root = workspace_root();
    let baseline = load_baseline(&root.join("lint-baseline.json")).expect("baseline must parse");
    let report = lint_workspace(root, &baseline).expect("workspace must be readable");
    assert!(
        report.passed(),
        "gcr-lint found new issues:\n{}",
        report.human()
    );
    assert!(
        report.unused_baseline.is_empty(),
        "baseline entries matching nothing should be removed:\n{}",
        report.human()
    );
    // Sanity: the walk actually saw the workspace, not an empty dir.
    assert!(
        report.files_scanned > 50,
        "only {} files",
        report.files_scanned
    );
}
