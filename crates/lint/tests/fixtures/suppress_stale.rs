// Fixture: a suppression over a clean line is itself a finding (W00).
pub fn add(a: u64, b: u64) -> u64 {
    // gcr-lint: allow(D02) nothing on the next line needs this
    a + b
}
