// Fixture: a suppression without a reason waives the finding but earns W01.
pub fn stamp() -> u128 {
    // gcr-lint: allow(D02)
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}
