// Fixture: a sim-crate module reaching shard-local state directly (S01).
// Both the `.shards` arena poke and the shard-local type uses must fire.

pub fn steal(ex: &mut Executor) -> u64 {
    let n = ex.shards[0].heap.len() as u64;
    n
}

pub fn forge(at: u64, seq: u64) -> HeapEntry {
    HeapEntry { at, seq }
}
