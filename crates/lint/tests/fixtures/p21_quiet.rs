// Fixture: sound GC-floor handling (P21 quiet). The pending snapshot is
// promoted into the committed ledger before any floor is derived, and a
// binding that once held pending state is killed by a clean reassignment
// before reaching a sink.
impl GpState {
    pub fn on_commit(&self, gen: u64) {
        let mut committed = self.committed.borrow_mut();
        let snap = self.pending.borrow_mut().remove(&gen);
        committed.push((gen, snap));
        let idx = committed.len();
        if let Some((_, floor)) = committed.get(idx) {
            self.vols.borrow_mut().advertise(&floor.rr);
        }
    }

    pub fn rollback_to(&self) {
        let mut floor = self.pending.borrow().len() as u64;
        floor = self.committed.borrow().len() as u64;
        self.vols.borrow_mut().reset_floors(&floor);
    }
}
