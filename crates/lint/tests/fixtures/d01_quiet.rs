// Fixture: D01 must stay quiet — ordered containers iterate freely, and
// hash maps are fine for point lookups (no iteration-order dependence).
use std::collections::{BTreeMap, HashMap};

pub fn tally(xs: &[(u32, u64)]) -> u64 {
    let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
    for &(k, v) in xs {
        *counts.entry(k).or_insert(0) += v;
    }
    let mut total = 0;
    for (_k, v) in counts.iter() {
        total += v;
    }
    total
}

pub fn lookup(index: &HashMap<u32, u64>, k: u32) -> u64 {
    index.get(&k).copied().unwrap_or(0)
}
