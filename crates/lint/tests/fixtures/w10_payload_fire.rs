// Fixture: the BOOKMARK payload is sent as a `u64` volume but decoded
// as a `Vec<u64>` (W10 payload-type mismatch) — the `Rc<dyn Any>`
// downcast returns None on every wave.
pub async fn blocking_wave(ctx: &mut Ctx) -> Result<(), WaveError> {
    for peer in ctx.peers() {
        let my_sent = total_sent(peer);
        ctx.ctrl_send(peer, tags::BOOKMARK, CTRL_BYTES, Some(Rc::new(my_sent)))
            .await?;
        let env = ctx.ctrl_recv(peer, tags::BOOKMARK).await?;
        let theirs = env.payload_as::<Vec<u64>>();
        record(theirs);
    }
    Ok(())
}

pub fn total_sent(peer: u32) -> u64 {
    u64::from(peer)
}
