// Fixture: D03 must fire — aborts and unchecked indexing on the recovery
// path (linted under a recovery-critical rel path).
pub fn volume(payload: Option<u64>) -> u64 {
    payload.unwrap()
}

pub fn plan(payload: Option<u64>) -> u64 {
    payload.expect("plan payload")
}

pub fn image(sizes: &[u64], rank: usize) -> u64 {
    sizes[rank]
}

pub fn must_not_happen() {
    panic!("recovery cannot abort");
}
