// Fixture: a minimal shard boundary (stands in for crates/sim/src/shard.rs).
// Timer-heap types stay pub(crate); only the merged counters are exported.

pub(crate) struct HeapEntry {
    pub(crate) at: u64,
    pub(crate) seq: u64,
}

pub(crate) struct Shard {
    pub(crate) heap: Vec<HeapEntry>,
}

pub struct SimStats {
    pub events: u64,
    pub spawns: u64,
}
