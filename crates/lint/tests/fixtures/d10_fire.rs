// Fixture: wall-clock taint reaching the digest/trace plane (D10).
// `direct_flow` binds the clock and digests it two statements later;
// `call_flow` gets the taint through a helper's return value.

fn digest(x: u64) -> u64 {
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn wall_nanos() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos() as u64
}

pub fn direct_flow(out: &mut Vec<u64>) {
    let t0 = std::time::Instant::now();
    let wall = t0.elapsed().as_nanos() as u64;
    out.push(digest(wall));
}

pub fn call_flow(tr: &mut Trace) {
    let w = wall_nanos();
    tr.trace_send(0, w);
}
