// Fixture: D01 must fire — hash-ordered iteration in a deterministic crate.
use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[(u32, u64)]) -> u64 {
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for &(k, v) in xs {
        *counts.entry(k).or_insert(0) += v;
    }
    let mut total = 0;
    for (_k, v) in counts.iter() {
        total += v;
    }
    total
}

pub fn first_seen(xs: &[u32]) -> Option<u32> {
    let seen: HashSet<u32> = xs.iter().copied().collect();
    seen.into_iter().next()
}
