// Fixture: the decoder destructures the flattened clock's fields in the
// opposite order of the encoder's writes (W10 field-order swap) —
// every record's comm id and volume silently trade places.
pub(crate) fn flatten(clock: &BTreeMap<u64, u64>) -> Vec<u64> {
    clock.iter().flat_map(|(&c, &v)| [c, v]).collect()
}

pub(crate) fn merge_max(target: &mut BTreeMap<u64, u64>, flat: &[u64]) {
    for pair in flat.chunks_exact(2) {
        if let [val, comm] = pair {
            let cur = target.entry(*comm).or_insert(0);
            if *cur < *val {
                *cur = *val;
            }
        }
    }
}
