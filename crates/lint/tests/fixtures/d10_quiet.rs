// Fixture: D10 quiet. `killed` overwrites the tainted binding with a
// clean value before the digest (the kill the syntactic rules cannot
// express); `reported` reads the wall clock but only *reports* it —
// bench wall-time may be printed, never digested.

fn digest(x: u64) -> u64 {
    x.wrapping_mul(3)
}

pub fn killed(out: &mut Vec<u64>) {
    let mut t = 0u64;
    t = std::time::Instant::now().elapsed().as_nanos() as u64;
    t = 42;
    out.push(digest(t));
}

pub fn reported(lines: &mut Vec<String>) {
    let t0 = std::time::Instant::now();
    let wall = t0.elapsed().as_nanos() as u64;
    lines.push(format!("wall: {wall}"));
}
