// Fixture: a tag-dual session (P20 quiet). Every emitted tag has a
// reachable handler in the same session and vice versa — BOOKMARK is a
// symmetric exchange, COMMIT pairs the coordinator branch with the
// member branch.
pub async fn blocking_wave(ctx: &mut Ctx) -> Result<(), WaveError> {
    for peer in ctx.peers() {
        ctx.ctrl_send(peer, tags::BOOKMARK, 0).await?;
        ctx.ctrl_recv(peer, tags::BOOKMARK).await?;
    }
    if is_coord {
        for peer in ctx.peers() {
            ctx.ctrl_send(peer, tags::COMMIT, outcome).await?;
        }
    } else {
        ctx.ctrl_recv(coord, tags::COMMIT).await?;
    }
    Ok(())
}
