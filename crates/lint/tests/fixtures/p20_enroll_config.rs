// Fixture: a protocol-mode enum with a variant no session table binds
// (P20 enrollment). `Blocking` is fully live via the companion fixture
// files; `Extra` is protocol #8 arriving without a session table.
pub enum Mode {
    Blocking,
    Extra,
}
