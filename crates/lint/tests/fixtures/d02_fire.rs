// Fixture: D02 must fire — wall-clock and OS entropy in simulated code.
pub fn stamp() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}

pub fn parallel() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}
