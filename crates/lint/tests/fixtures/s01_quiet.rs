// Fixture: S01 quiet — only the exported merged counters cross the
// boundary; no shard-local type, no `.shards` access.

pub fn throughput(stats: &SimStats) -> u64 {
    stats.events + stats.spawns
}
