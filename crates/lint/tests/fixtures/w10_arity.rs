// Fixture: the encoder writes two-field records, the decoder walks the
// stream in chunks of three (W10 arity drift) — the third "field" is
// the next record's comm id.
pub(crate) fn flatten(clock: &BTreeMap<u64, u64>) -> Vec<u64> {
    clock.iter().flat_map(|(&c, &v)| [c, v]).collect()
}

pub(crate) fn merge_max(target: &mut BTreeMap<u64, u64>, flat: &[u64]) {
    for pair in flat.chunks_exact(3) {
        if let [comm, val, extra] = pair {
            let cur = target.entry(*comm).or_insert(0);
            if *cur < *val + *extra {
                *cur = *val + *extra;
            }
        }
    }
}
