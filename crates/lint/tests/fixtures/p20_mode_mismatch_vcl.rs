// Fixture (half 2): the Vcl session *emits* `tags::CVC_CLOCK`, which
// only the blocking session handles (P20 mode-mismatch). Paired with
// `p20_mode_mismatch_blocking.rs`.
pub async fn vcl_wave(ctx: &mut Ctx) -> Result<(), WaveError> {
    for peer in ctx.peers() {
        ctx.ctrl_send(peer, tags::CVC_CLOCK, 0).await?;
    }
    Ok(())
}
