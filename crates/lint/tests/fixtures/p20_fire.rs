// Fixture: both session tag-duality breaks (P20). The wave emits
// `tags::MARKER` that no reachable path of its session can receive —
// the rendezvous blocks the wave forever — and receives `tags::COMMIT`
// that nothing in any session emits: a dead dispatch arm.
pub async fn blocking_wave(ctx: &mut Ctx) -> Result<(), WaveError> {
    for peer in ctx.peers() {
        ctx.ctrl_send(peer, tags::MARKER, 0).await?;
    }
    ctx.ctrl_recv(coord, tags::COMMIT).await?;
    Ok(())
}
