// Fixture: a well-phased blocking 2PC wave (P10 quiet). Drain, freeze
// barrier, begin, image writes + outcome records, post-write barrier,
// then the commit/abort decision and its broadcast — in spec order.
pub async fn blocking_wave(
    ctx: &mut Ctx,
    store: &mut Store,
    storage: &mut Storage,
) -> Result<(), WaveError> {
    for peer in ctx.peers() {
        ctx.ctrl_send(peer, tags::BOOKMARK, 0).await?;
        ctx.ctrl_recv(peer, tags::BOOKMARK).await?;
    }
    ctx.ctrl_barrier(&members, tags::BARRIER1).await?;
    store.begin(gid, wave, &members)?;
    match storage.write_with_retry(node, bytes, target).await {
        Ok(n) => store.record_image(gid, wave, rank, n)?,
        Err(e) => store.record_failure(gid, wave, rank, e)?,
    }
    ctx.ctrl_barrier(&members, tags::BARRIER2).await?;
    if is_coord {
        if all_ok {
            store.commit(gid, wave, &members)?;
        } else {
            store.abort(gid, wave)?;
        }
        for peer in ctx.peers() {
            ctx.ctrl_send(peer, tags::COMMIT, outcome).await?;
        }
    } else {
        ctx.ctrl_recv(coord, tags::COMMIT).await?;
    }
    Ok(())
}
