// Fixture: tag-silent restart entries, just enough for the Blocking
// session table to be fully live in the enrollment fixture workspace.
pub async fn restart_rank_with_peers(ctx: &mut Ctx) -> Result<(), WaveError> {
    Ok(())
}

pub async fn serve_peer_recovery(ctx: &mut Ctx) -> Result<(), WaveError> {
    Ok(())
}
