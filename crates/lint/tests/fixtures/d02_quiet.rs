// Fixture: D02 must stay quiet — simulated time only, and mentions of
// Instant::now in comments or strings are not code.
pub fn advance(now_ms: u64, dt_ms: u64) -> u64 {
    // Real code would call Instant::now() here; the simulator must not.
    now_ms + dt_ms
}

pub fn describe() -> &'static str {
    "uses SimTime, never std::time::Instant"
}
