// Fixture: encoder and decoder agree on the flattened clock's record
// shape — two fields, comm id first (W10 quiet). The decoder's longer
// names (`comm`, `val`) pair with the encoder's short ones by prefix.
pub(crate) fn flatten(clock: &BTreeMap<u64, u64>) -> Vec<u64> {
    clock.iter().flat_map(|(&c, &v)| [c, v]).collect()
}

pub(crate) fn merge_max(target: &mut BTreeMap<u64, u64>, flat: &[u64]) {
    for pair in flat.chunks_exact(2) {
        if let [comm, val] = pair {
            let cur = target.entry(*comm).or_insert(0);
            if *cur < *val {
                *cur = *val;
            }
        }
    }
}
