// Fixture (half 1): the blocking session *handles* `tags::CVC_CLOCK`,
// which only the Vcl session emits — a cross-protocol wiring mistake
// (P20 mode-mismatch). Paired with `p20_mode_mismatch_vcl.rs`.
pub async fn blocking_wave(ctx: &mut Ctx) -> Result<(), WaveError> {
    ctx.ctrl_recv(coord, tags::CVC_CLOCK).await?;
    Ok(())
}
