// Fixture: a justified suppression waives its finding and reports nothing.
pub fn stamp() -> u128 {
    // gcr-lint: allow(D02) fixture exercises the waiver path, not the clock
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}
