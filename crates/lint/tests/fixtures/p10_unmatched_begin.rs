// Fixture: a generation opened and never resolved (P10 fire,
// unmatched-begin class). The wave ends with the generation still
// `pending`: no barrier, no commit, no abort.
pub async fn blocking_wave(
    ctx: &mut Ctx,
    store: &mut Store,
    storage: &mut Storage,
) -> Result<(), WaveError> {
    for peer in ctx.peers() {
        ctx.ctrl_send(peer, tags::BOOKMARK, 0).await?;
        ctx.ctrl_recv(peer, tags::BOOKMARK).await?;
    }
    ctx.ctrl_barrier(&members, tags::BARRIER1).await?;
    store.begin(gid, wave, &members)?;
    match storage.write_with_retry(node, bytes, target).await {
        Ok(n) => store.record_image(gid, wave, rank, n)?,
        Err(e) => store.record_failure(gid, wave, rank, e)?,
    }
    Ok(())
}
