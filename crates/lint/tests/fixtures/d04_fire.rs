// Fixture: D04 must fire — a dead-code-suppressed pub fn that mutates
// state is an unwired protocol transition hiding from the compiler.
pub struct Counters {
    pub r: u64,
}

#[allow(dead_code)]
pub fn roll_back(c: &mut Counters) {
    c.r = 0;
}
