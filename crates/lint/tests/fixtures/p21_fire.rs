// Fixture: the GC floor is derived from the *pending* (uncommitted)
// generation ledger and reaches the advertise/trim surfaces (P21) — a
// crash between here and the commit leaves peers trimmed past what the
// fallback restart still needs.
impl GpState {
    pub fn on_commit(&self, gen: u64) {
        let ledger = self.pending.borrow();
        let floor = floor_of(&ledger, gen);
        self.vols.borrow_mut().advertise(&floor);
    }

    pub fn trim(&self, peer: u32) {
        self.log
            .borrow_mut()
            .peer_mut(peer)
            .gc(self.pending.borrow().len() as u64);
    }
}
