// Fixture: D04 must stay quiet — private helpers may be parked behind
// allow(dead_code), and read-only pub fns mutate nothing.
pub struct Counters {
    pub r: u64,
}

#[allow(dead_code)]
fn private_poke(c: &mut Counters) {
    c.r += 1;
}

#[allow(dead_code)]
pub fn read_only(c: &Counters) -> u64 {
    c.r
}
