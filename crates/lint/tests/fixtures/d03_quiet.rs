// Fixture: D03 must stay quiet — typed errors and checked access on the
// recovery path.
pub enum RecoveryError {
    BadPayload,
    MissingImage,
}

pub fn volume(payload: Option<u64>) -> Result<u64, RecoveryError> {
    payload.ok_or(RecoveryError::BadPayload)
}

pub fn image(sizes: &[u64], rank: usize) -> Result<u64, RecoveryError> {
    sizes.get(rank).copied().ok_or(RecoveryError::MissingImage)
}
