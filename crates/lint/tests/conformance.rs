//! Fixture tests for the conformance passes: P20 session tag-duality,
//! W10 wire-shape pairing (record shapes and payload types), and P21
//! GC-floor soundness. Each fixture pretends to live at the real
//! protocol path so the checked-in session/wire tables activate, and is
//! fed through [`gcr_lint::lint_files`] as a synthetic workspace.

use gcr_lint::{lint_files, Baseline, Finding, Report, Rule};

/// Lint an in-memory workspace.
fn ws(files: &[(&str, &str)]) -> Report {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(rel, src)| (rel.to_string(), src.to_string()))
        .collect();
    lint_files(&owned, &Baseline::default())
}

fn of_rule(report: &Report, rule: Rule) -> Vec<&Finding> {
    report.findings.iter().filter(|f| f.rule == rule).collect()
}

/// The session/wire tables only activate at the real protocol paths.
const BLOCKING: &str = "crates/core/src/blocking.rs";
const VCL: &str = "crates/core/src/vcl.rs";
const CVC: &str = "crates/core/src/cvc.rs";
const CONFIG: &str = "crates/core/src/config.rs";
const RESTART: &str = "crates/core/src/restart.rs";
const HOOKS: &str = "crates/core/src/hooks.rs";

// ---------------------------------------------------------------- P20

#[test]
fn p20_fires_on_orphaned_tag_and_dead_dispatch_arm() {
    let report = ws(&[(BLOCKING, include_str!("fixtures/p20_fire.rs"))]);
    let p20 = of_rule(&report, Rule::P20);
    assert!(
        p20.iter().any(|f| f.message.contains("`MARKER`")
            && f.message.contains("rendezvous blocks the wave forever")),
        "the unhandled MARKER emit must fire: {p20:#?}"
    );
    assert!(
        p20.iter()
            .any(|f| f.message.contains("`COMMIT`") && f.message.contains("dead dispatch arm")),
        "the unemittable COMMIT handler must fire: {p20:#?}"
    );
}

#[test]
fn p20_quiet_on_a_tag_dual_session() {
    let report = ws(&[(BLOCKING, include_str!("fixtures/p20_quiet.rs"))]);
    let p20 = of_rule(&report, Rule::P20);
    assert!(p20.is_empty(), "a dual session must be clean: {p20:#?}");
}

#[test]
fn p20_fires_on_mode_mismatched_tag() {
    let report = ws(&[
        (
            BLOCKING,
            include_str!("fixtures/p20_mode_mismatch_blocking.rs"),
        ),
        (VCL, include_str!("fixtures/p20_mode_mismatch_vcl.rs")),
    ]);
    let p20 = of_rule(&report, Rule::P20);
    assert!(
        p20.iter().any(|f| f.message.contains("`CVC_CLOCK`")
            && f.message.contains("emitted under mode `Vcl`")
            && f.message.contains("handled only under")),
        "the Vcl emit with a Blocking-only handler must fire: {p20:#?}"
    );
    assert!(
        p20.iter().any(|f| f.message.contains("`CVC_CLOCK`")
            && f.message.contains("handled under mode `Blocking`")
            && f.message.contains("emitted only under [Vcl]")),
        "the Blocking handler fed only by Vcl must fire: {p20:#?}"
    );
}

#[test]
fn p20_fires_on_a_mode_variant_without_a_session_table() {
    let report = ws(&[
        (CONFIG, include_str!("fixtures/p20_enroll_config.rs")),
        (BLOCKING, include_str!("fixtures/p20_quiet.rs")),
        (RESTART, include_str!("fixtures/p20_enroll_restart.rs")),
    ]);
    let p20 = of_rule(&report, Rule::P20);
    assert!(
        p20.iter().any(|f| f.file == CONFIG
            && f.message.contains("`Extra`")
            && f.message.contains("no live P20 session table")),
        "the unregistered `Extra` variant must fire at the enum: {p20:#?}"
    );
    assert!(
        !p20.iter().any(|f| f.message.contains("`Blocking`")),
        "the fully-live `Blocking` table must not fire: {p20:#?}"
    );
}

// ---------------------------------------------------------------- W10

#[test]
fn w10_fires_on_a_field_order_swap() {
    let report = ws(&[(CVC, include_str!("fixtures/w10_swap.rs"))]);
    let w10 = of_rule(&report, Rule::W10);
    assert!(
        w10.iter().any(|f| f.message.contains("field-order swap")
            && f.message.contains("[val, comm]")
            && f.message.contains("[c, v]")),
        "the swapped decoder destructure must fire: {w10:#?}"
    );
}

#[test]
fn w10_fires_on_record_arity_drift() {
    let report = ws(&[(CVC, include_str!("fixtures/w10_arity.rs"))]);
    let w10 = of_rule(&report, Rule::W10);
    assert!(
        w10.iter()
            .any(|f| f.message.contains("chunks of 3") && f.message.contains("2-field records")),
        "the 2-write/3-read drift must fire: {w10:#?}"
    );
}

#[test]
fn w10_quiet_on_matching_record_shapes() {
    let report = ws(&[(CVC, include_str!("fixtures/w10_quiet.rs"))]);
    let w10 = of_rule(&report, Rule::W10);
    assert!(w10.is_empty(), "a matching pair must be clean: {w10:#?}");
}

#[test]
fn w10_fires_on_a_payload_type_mismatch() {
    let report = ws(&[(BLOCKING, include_str!("fixtures/w10_payload_fire.rs"))]);
    let w10 = of_rule(&report, Rule::W10);
    assert!(
        w10.iter().any(|f| f.message.contains("`BOOKMARK`")
            && f.message.contains("[u64]")
            && f.message.contains("[Vec<u64>]")),
        "the u64-sent / Vec<u64>-decoded tag must fire: {w10:#?}"
    );
}

#[test]
fn w10_quiet_on_matching_payload_types() {
    let report = ws(&[(BLOCKING, include_str!("fixtures/w10_payload_quiet.rs"))]);
    let w10 = of_rule(&report, Rule::W10);
    assert!(w10.is_empty(), "a u64/u64 tag must be clean: {w10:#?}");
}

// ---------------------------------------------------------------- P21

#[test]
fn p21_fires_when_a_pending_value_reaches_the_gc_surfaces() {
    let report = ws(&[(HOOKS, include_str!("fixtures/p21_fire.rs"))]);
    let p21 = of_rule(&report, Rule::P21);
    assert!(
        p21.iter().any(|f| f.message.contains("`advertise(…)`")
            && f.message.contains("pending generation ledger")),
        "the pending-derived advertise must fire with its chain: {p21:#?}"
    );
    assert!(
        p21.iter().any(|f| f.message.contains("`gc(…)`")),
        "the pending-derived log trim must fire: {p21:#?}"
    );
}

#[test]
fn p21_quiet_on_committed_floors_and_killed_bindings() {
    let report = ws(&[(HOOKS, include_str!("fixtures/p21_quiet.rs"))]);
    let p21 = of_rule(&report, Rule::P21);
    assert!(
        p21.is_empty(),
        "committed-ledger floors and cleanly reassigned bindings must be \
         quiet: {p21:#?}"
    );
}
