//! CI runtime budget: `gcrsim lint` runs on every push, so the full
//! analysis — lexing, call graph, semantic passes, and the
//! flow-sensitive and conformance engines — must stay interactive, and
//! warm runs through the incremental cache must feel instant. CI runs
//! this test in
//! release mode (the `lint-semantic` job); the wall-clock assertion is
//! meaningless under an unoptimized build, so it is release-gated.

use std::path::Path;
use std::time::{Duration, Instant};

use gcr_lint::cache::lint_workspace_cached;
use gcr_lint::{lint_workspace, Baseline};

const BUDGET: Duration = Duration::from_secs(10);

/// A warm (fully cached) run must feel instant — the interactive bar.
const WARM_BUDGET: Duration = Duration::from_secs(2);

#[test]
fn full_workspace_lint_stays_under_the_ci_budget() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let t0 = Instant::now();
    let report = lint_workspace(root, &Baseline::default()).expect("workspace must be readable");
    let elapsed = t0.elapsed();
    // The walk must have seen the real tree, or the timing is a lie.
    assert!(
        report.files_scanned > 50,
        "only {} files scanned",
        report.files_scanned
    );
    if cfg!(not(debug_assertions)) {
        assert!(
            elapsed < BUDGET,
            "full-workspace lint took {elapsed:?} (budget {BUDGET:?}) — \
             profile the flow-sensitive passes before raising this"
        );
    }
}

#[test]
fn warm_cache_lint_stays_under_the_interactive_budget() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let cache_dir = std::env::temp_dir().join(format!("gcr-lint-budget-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let baseline = Baseline::default();
    let cold = lint_workspace_cached(root, &baseline, &cache_dir).expect("cold run");
    assert!(!cold.1.hit, "first run against an empty cache must be cold");

    let t0 = Instant::now();
    let warm = lint_workspace_cached(root, &baseline, &cache_dir).expect("warm run");
    let elapsed = t0.elapsed();
    assert!(warm.1.hit, "second run of an unchanged tree must hit");
    // The cache must be a pure memo: byte-identical reports, cold or warm.
    assert_eq!(
        cold.0.to_json().pretty(),
        warm.0.to_json().pretty(),
        "cached report drifted from the cold run"
    );
    if cfg!(not(debug_assertions)) {
        assert!(
            elapsed < WARM_BUDGET,
            "warm-cache lint took {elapsed:?} (budget {WARM_BUDGET:?}) — \
             the workspace artifact should replay without re-analysis"
        );
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
}
