//! CI runtime budget: `gcrsim lint` runs on every push, so the full
//! analysis — lexing, call graph, semantic passes, and the three
//! flow-sensitive engines — must stay interactive. CI runs this test in
//! release mode (the `lint-semantic` job); the wall-clock assertion is
//! meaningless under an unoptimized build, so it is release-gated.

use std::path::Path;
use std::time::{Duration, Instant};

use gcr_lint::{lint_workspace, Baseline};

const BUDGET: Duration = Duration::from_secs(10);

#[test]
fn full_workspace_lint_stays_under_the_ci_budget() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let t0 = Instant::now();
    let report = lint_workspace(root, &Baseline::default()).expect("workspace must be readable");
    let elapsed = t0.elapsed();
    // The walk must have seen the real tree, or the timing is a lie.
    assert!(
        report.files_scanned > 50,
        "only {} files scanned",
        report.files_scanned
    );
    if cfg!(not(debug_assertions)) {
        assert!(
            elapsed < BUDGET,
            "full-workspace lint took {elapsed:?} (budget {BUDGET:?}) — \
             profile the flow-sensitive passes before raising this"
        );
    }
}
