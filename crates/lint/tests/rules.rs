//! Fixture tests: each rule has a positive fixture it must fire on and a
//! negative fixture it must stay quiet on, under the policy tier the rule
//! targets. The fixtures live under `tests/fixtures/` and are never
//! compiled — they are inputs to the analyzer, not code.

use gcr_lint::{lint_source, Baseline, Rule, Status};

/// Lint a fixture as if it lived at `rel` inside the workspace.
fn lint_at(rel: &str, src: &str) -> Vec<gcr_lint::Finding> {
    lint_source(rel, src)
}

fn rules_of(findings: &[gcr_lint::Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- D01

#[test]
fn d01_fires_on_hash_iteration_in_deterministic_crate() {
    let fs = lint_at(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/d01_fire.rs"),
    );
    assert!(
        fs.iter().filter(|f| f.rule == Rule::D01).count() >= 2,
        "expected HashMap iter() and HashSet into_iter() to fire: {fs:?}"
    );
    assert!(fs.iter().all(|f| f.rule == Rule::D01));
}

#[test]
fn d01_quiet_on_btreemap_and_hash_lookup() {
    let fs = lint_at(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/d01_quiet.rs"),
    );
    assert!(fs.is_empty(), "no findings expected: {fs:?}");
}

#[test]
fn d01_not_applied_outside_deterministic_crates() {
    let fs = lint_at(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/d01_fire.rs"),
    );
    assert!(fs.is_empty(), "bench crate may use hash iteration: {fs:?}");
}

// ---------------------------------------------------------------- D02

#[test]
fn d02_fires_on_wall_clock_and_threads() {
    let fs = lint_at(
        "crates/net/src/fixture.rs",
        include_str!("fixtures/d02_fire.rs"),
    );
    assert_eq!(
        rules_of(&fs),
        vec![Rule::D02, Rule::D02],
        "Instant::now and available_parallelism each fire once: {fs:?}"
    );
}

#[test]
fn d02_quiet_on_sim_time_and_comments() {
    let fs = lint_at(
        "crates/net/src/fixture.rs",
        include_str!("fixtures/d02_quiet.rs"),
    );
    assert!(fs.is_empty(), "comments and strings are not code: {fs:?}");
}

#[test]
fn d02_exempt_in_bench_and_cli() {
    let src = include_str!("fixtures/d02_fire.rs");
    assert!(lint_at("crates/bench/src/fixture.rs", src).is_empty());
    assert!(lint_at("src/cli.rs", src).is_empty());
}

// ---------------------------------------------------------------- D03

#[test]
fn d03_fires_on_aborts_in_recovery_critical_file() {
    let fs = lint_at(
        "crates/core/src/restart.rs",
        include_str!("fixtures/d03_fire.rs"),
    );
    let d03 = fs.iter().filter(|f| f.rule == Rule::D03).count();
    assert!(
        d03 >= 4,
        "unwrap, expect, indexing and panic! must all fire: {fs:?}"
    );
}

#[test]
fn d03_quiet_on_typed_errors_and_checked_access() {
    let fs = lint_at(
        "crates/core/src/restart.rs",
        include_str!("fixtures/d03_quiet.rs"),
    );
    assert!(
        fs.is_empty(),
        "ok_or and .get() are the sanctioned forms: {fs:?}"
    );
}

#[test]
fn d03_not_applied_outside_recovery_critical_files() {
    let fs = lint_at(
        "crates/core/src/blocking.rs",
        include_str!("fixtures/d03_fire.rs"),
    );
    assert!(
        fs.iter().all(|f| f.rule != Rule::D03),
        "blocking.rs is not recovery-critical: {fs:?}"
    );
}

// ---------------------------------------------------------------- D04

#[test]
fn d04_fires_on_dead_pub_fn_taking_mut_state() {
    let fs = lint_at(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d04_fire.rs"),
    );
    assert_eq!(rules_of(&fs), vec![Rule::D04], "{fs:?}");
}

#[test]
fn d04_quiet_on_private_or_read_only_fns() {
    let fs = lint_at(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d04_quiet.rs"),
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn d04_not_applied_outside_protocol_crates() {
    let fs = lint_at(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/d04_fire.rs"),
    );
    assert!(fs.is_empty(), "D04 is a protocol-crate rule: {fs:?}");
}

// ------------------------------------------------------- suppressions

#[test]
fn justified_suppression_waives_the_finding() {
    let fs = lint_at(
        "crates/net/src/fixture.rs",
        include_str!("fixtures/suppress_ok.rs"),
    );
    assert!(fs.is_empty(), "waived finding must not be reported: {fs:?}");
}

#[test]
fn stale_suppression_is_reported_as_w00() {
    let fs = lint_at(
        "crates/net/src/fixture.rs",
        include_str!("fixtures/suppress_stale.rs"),
    );
    assert_eq!(rules_of(&fs), vec![Rule::W00], "{fs:?}");
}

#[test]
fn unjustified_suppression_waives_but_earns_w01() {
    let fs = lint_at(
        "crates/net/src/fixture.rs",
        include_str!("fixtures/suppress_unjustified.rs"),
    );
    assert_eq!(rules_of(&fs), vec![Rule::W01], "{fs:?}");
}

// ----------------------------------------------------------- baseline

#[test]
fn baseline_round_trips_and_grandfathers_findings() {
    let mut findings = lint_at(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/d01_fire.rs"),
    );
    assert!(!findings.is_empty());

    // from_findings → dump → parse must be lossless.
    let base = Baseline::from_findings(&findings);
    let reparsed = Baseline::parse(&base.dump()).expect("own dump must parse");
    assert_eq!(base, reparsed);

    // The round-tripped baseline covers every finding…
    let unused = reparsed.apply(&mut findings);
    assert!(unused.is_empty(), "everything should match: {unused:?}");
    assert!(findings.iter().all(|f| f.status == Status::Baselined));

    // …and an entry that matches nothing is reported as unused.
    let mut none: Vec<gcr_lint::Finding> = Vec::new();
    let unused = reparsed.apply(&mut none);
    assert_eq!(unused.len(), reparsed.entries.len());
}

#[test]
fn baseline_rejects_unknown_version() {
    assert!(Baseline::parse("{\"version\": 2, \"findings\": []}").is_err());
}
