//! Fixture tests for the flow-sensitive passes: P10 protocol phase-order
//! model checking, D10 determinism taint dataflow, and S01 shard
//! isolation. Each fixture is fed through [`gcr_lint::lint_files`] as a
//! synthetic workspace so the interprocedural machinery (symbol index,
//! call graph, spec activation) runs exactly as it does on the live tree.

use gcr_lint::{lint_files, Baseline, Finding, Report, Rule};

/// Lint an in-memory workspace.
fn ws(files: &[(&str, &str)]) -> Report {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(rel, src)| (rel.to_string(), src.to_string()))
        .collect();
    lint_files(&owned, &Baseline::default())
}

fn of_rule(report: &Report, rule: Rule) -> Vec<&Finding> {
    report.findings.iter().filter(|f| f.rule == rule).collect()
}

// ---------------------------------------------------------------- P10

/// The blocking-2pc spec only activates when the entry lives at its
/// real path, so every P10 fixture pretends to be `blocking.rs`.
const BLOCKING: &str = "crates/core/src/blocking.rs";

#[test]
fn p10_quiet_on_a_well_phased_blocking_wave() {
    let report = ws(&[(BLOCKING, include_str!("fixtures/p10_quiet.rs"))]);
    assert!(
        report.findings.is_empty(),
        "a spec-conforming wave must be clean: {:#?}",
        report.findings
    );
}

#[test]
fn p10_fires_on_send_after_commit() {
    let report = ws(&[(BLOCKING, include_str!("fixtures/p10_send_after_commit.rs"))]);
    let p10 = of_rule(&report, Rule::P10);
    assert!(
        p10.iter().any(|f| f
            .message
            .contains("`send:BOOKMARK` is illegal in phase `resolved`")
            && f.message.contains("witness")),
        "the post-commit BOOKMARK send must fire with a witness: {p10:#?}"
    );
}

#[test]
fn p10_fires_on_commit_without_post_write_barrier() {
    let report = ws(&[(
        BLOCKING,
        include_str!("fixtures/p10_commit_without_barrier.rs"),
    )]);
    let p10 = of_rule(&report, Rule::P10);
    assert!(
        p10.iter().any(|f| f
            .message
            .contains("`store.commit` is illegal in phase `pending`")
            && f.message.contains("witness")),
        "commit before BARRIER2 must fire with a witness: {p10:#?}"
    );
}

#[test]
fn p10_fires_when_abort_is_unreachable() {
    let report = ws(&[(BLOCKING, include_str!("fixtures/p10_abort_unreachable.rs"))]);
    let p10 = of_rule(&report, Rule::P10);
    assert!(
        p10.iter().any(|f| f
            .message
            .contains("required event `store.abort` is unreachable")),
        "an always-commit coordinator must fire the required-event check: {p10:#?}"
    );
}

#[test]
fn p10_fires_on_an_unresolved_generation() {
    let report = ws(&[(BLOCKING, include_str!("fixtures/p10_unmatched_begin.rs"))]);
    let p10 = of_rule(&report, Rule::P10);
    assert!(
        p10.iter()
            .any(|f| f.message.contains("non-accepting phase `pending`")),
        "a wave ending mid-generation must fire the accepting-state check: {p10:#?}"
    );
}

#[test]
fn p10_specs_stay_inactive_outside_their_entry_file() {
    // The same violating body at a different path matches no spec.
    let report = ws(&[(
        "crates/core/src/other.rs",
        include_str!("fixtures/p10_send_after_commit.rs"),
    )]);
    assert!(of_rule(&report, Rule::P10).is_empty());
}

// ---------------------------------------------------------------- D10

/// Bench is D02-exempt (wall-clock measurement is its job), so only the
/// flow-sensitive rule can fire here — exactly D10's value over D02.
const BENCH: &str = "crates/bench/src/fixture.rs";

#[test]
fn d10_fires_on_direct_and_interprocedural_flows() {
    let report = ws(&[(BENCH, include_str!("fixtures/d10_fire.rs"))]);
    let d10 = of_rule(&report, Rule::D10);
    assert_eq!(d10.len(), 2, "digest + trace_send sinks: {d10:#?}");
    assert!(
        d10.iter().any(|f| f.message.contains("`digest(…)`")
            && f.message.contains("Instant::now()")
            && f.message.contains("`wall`")),
        "the direct flow must carry its witness chain: {d10:#?}"
    );
    assert!(
        d10.iter().any(|f| f.message.contains("`trace_send(…)`")
            && f.message.contains("returns a nondeterministic value")),
        "the helper-return flow must name the tainted call: {d10:#?}"
    );
}

#[test]
fn d10_quiet_on_killed_taint_and_unsinked_wall_time() {
    let report = ws(&[(BENCH, include_str!("fixtures/d10_quiet.rs"))]);
    assert!(
        report.findings.is_empty(),
        "reassignment kills taint; reporting is not digesting: {:#?}",
        report.findings
    );
}

// ---------------------------------------------------------------- S01

const SHARD: &str = "crates/sim/src/shard.rs";

#[test]
fn s01_fires_on_cross_shard_reach_around() {
    let report = ws(&[
        (SHARD, include_str!("fixtures/s01_boundary.rs")),
        (
            "crates/sim/src/rogue.rs",
            include_str!("fixtures/s01_fire.rs"),
        ),
    ]);
    let s01 = of_rule(&report, Rule::S01);
    assert!(
        s01.iter()
            .any(|f| f.message.contains("per-shard arena `.shards`")),
        "the arena poke must fire: {s01:#?}"
    );
    assert!(
        s01.iter()
            .any(|f| f.message.contains("shard-local type `HeapEntry`")),
        "naming a shard-local type must fire: {s01:#?}"
    );
}

#[test]
fn s01_quiet_on_exported_counters_and_in_boundary_use() {
    let report = ws(&[
        (SHARD, include_str!("fixtures/s01_boundary.rs")),
        (
            "crates/sim/src/stats.rs",
            include_str!("fixtures/s01_quiet.rs"),
        ),
    ]);
    assert!(
        report.findings.is_empty(),
        "SimStats is the sanctioned export: {:#?}",
        report.findings
    );
}

#[test]
fn s01_fires_when_the_boundary_exports_shard_state() {
    let leaky = include_str!("fixtures/s01_boundary.rs")
        .replace("pub(crate) struct Shard", "pub struct Shard");
    let report = ws(&[(SHARD, &leaky)]);
    let s01 = of_rule(&report, Rule::S01);
    assert!(
        s01.iter()
            .any(|f| f.message.contains("`Shard` is exported `pub`")),
        "a bare-pub shard type must fire: {s01:#?}"
    );
}

#[test]
fn s01_ignores_workspaces_without_a_sharded_kernel() {
    let report = ws(&[(
        "crates/sim/src/rogue.rs",
        include_str!("fixtures/s01_fire.rs"),
    )]);
    assert!(of_rule(&report, Rule::S01).is_empty());
}

// -------------------------------------------------------------- SARIF

#[test]
fn sarif_renders_findings_with_rule_metadata() {
    let report = ws(&[(BENCH, include_str!("fixtures/d10_fire.rs"))]);
    let sarif = report.to_sarif().pretty();
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"name\": \"gcr-lint\""));
    assert!(sarif.contains("\"ruleId\": \"D10\""));
    assert!(sarif.contains("crates/bench/src/fixture.rs"));
    // Rendering is a pure function of the (sorted) report: byte-stable.
    assert_eq!(sarif, report.to_sarif().pretty());
}
