//! A minimal, dependency-free JSON value type with a strict parser and
//! compact/pretty writers.
//!
//! The simulator's artifacts (trace files, group definitions, CLI reports,
//! chaos schedules) are small, flat JSON documents; this crate gives them a
//! stable on-disk format without pulling an external serializer into the
//! build. Integers are kept exact (`u64`/`i64`) so byte counters and
//! nanosecond timestamps survive round trips bit-for-bit.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case for counters and times).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Json)>),
}

/// Parse or schema errors, with a byte offset when produced by the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset into the input (parser errors only).
    pub at: Option<usize>,
}

impl JsonError {
    /// A schema/shape error not tied to an input position.
    pub fn msg(m: impl Into<String>) -> Self {
        JsonError {
            msg: m.into(),
            at: None,
        }
    }

    fn parse(m: impl Into<String>, at: usize) -> Self {
        JsonError {
            msg: m.into(),
            at: Some(at),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.at {
            Some(at) => write!(f, "{} (at byte {at})", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    /// [`JsonError`] with the offending byte offset.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            b: input.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(JsonError::parse("trailing data after document", p.i));
        }
        Ok(v)
    }

    /// Serialize compactly (no whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => write_f64(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, pairs.len(), '{', '}', |out, i| {
                write_str(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1);
            }),
        }
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Field lookup that errors with the missing key's name.
    ///
    /// # Errors
    /// [`JsonError`] when `self` is not an object or lacks `key`.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::msg(format!("missing field '{key}'")))
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a `usize` if it is a non-negative integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// The value as an `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Typed field access: `u64`.
    ///
    /// # Errors
    /// [`JsonError`] on a missing or mistyped field.
    pub fn u64_field(&self, key: &str) -> Result<u64, JsonError> {
        self.field(key)?
            .as_u64()
            .ok_or_else(|| JsonError::msg(format!("field '{key}' is not a non-negative integer")))
    }

    /// Typed field access: `usize`.
    ///
    /// # Errors
    /// [`JsonError`] on a missing or mistyped field.
    pub fn usize_field(&self, key: &str) -> Result<usize, JsonError> {
        self.field(key)?
            .as_usize()
            .ok_or_else(|| JsonError::msg(format!("field '{key}' is not a valid size")))
    }

    /// Typed field access: `f64`.
    ///
    /// # Errors
    /// [`JsonError`] on a missing or mistyped field.
    pub fn f64_field(&self, key: &str) -> Result<f64, JsonError> {
        self.field(key)?
            .as_f64()
            .ok_or_else(|| JsonError::msg(format!("field '{key}' is not a number")))
    }

    /// Typed field access: string.
    ///
    /// # Errors
    /// [`JsonError`] on a missing or mistyped field.
    pub fn str_field(&self, key: &str) -> Result<&str, JsonError> {
        self.field(key)?
            .as_str()
            .ok_or_else(|| JsonError::msg(format!("field '{key}' is not a string")))
    }

    /// Typed field access: array.
    ///
    /// # Errors
    /// [`JsonError`] on a missing or mistyped field.
    pub fn arr_field(&self, key: &str) -> Result<&[Json], JsonError> {
        self.field(key)?
            .as_arr()
            .ok_or_else(|| JsonError::msg(format!("field '{key}' is not an array")))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}
impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::UInt(u as u64)
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        if i >= 0 {
            Json::UInt(i as u64)
        } else {
            Json::Int(i)
        }
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{}` is the shortest representation that round-trips exactly.
        let start = out.len();
        let _ = write!(out, "{x}");
        // Keep floats recognizably floats so integral values don't collapse
        // into the integer lexical space.
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(JsonError::parse(
                format!("expected '{}'", c as char),
                self.i,
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(JsonError::parse(format!("expected '{word}'"), self.i))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(JsonError::parse(
                format!("unexpected '{}'", c as char),
                self.i,
            )),
            None => Err(JsonError::parse("unexpected end of input", self.i)),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::parse("expected ',' or ']'", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::parse("expected ',' or '}'", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.i;
            // Fast path: run of plain bytes.
            while self.i < self.b.len() && self.b[self.i] != b'"' && self.b[self.i] != b'\\' {
                self.i += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.b[start..self.i])
                    .map_err(|_| JsonError::parse("invalid utf-8 in string", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::parse("unterminated escape", self.i))?;
                    self.i += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(JsonError::parse("bad low surrogate", self.i));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| JsonError::parse("bad codepoint", self.i))?);
                        }
                        _ => return Err(JsonError::parse("bad escape", self.i - 1)),
                    }
                }
                _ => return Err(JsonError::parse("unterminated string", self.i)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.i + 4 > self.b.len() {
            return Err(JsonError::parse("truncated \\u escape", self.i));
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + 4])
            .map_err(|_| JsonError::parse("bad \\u escape", self.i))?;
        let v =
            u32::from_str_radix(s, 16).map_err(|_| JsonError::parse("bad \\u escape", self.i))?;
        self.i += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| JsonError::parse("bad number", start))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::parse(format!("bad number '{text}'"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for src in ["null", "true", "false", "0", "42", "-7", "3.5", "\"hi\""] {
            let v = Json::parse(src).unwrap();
            assert_eq!(Json::parse(&v.dump()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn integers_are_exact() {
        let big = u64::MAX - 3;
        let v = Json::parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        assert_eq!(v.dump(), big.to_string());
        let neg = Json::parse("-9007199254740993").unwrap();
        assert_eq!(neg, Json::Int(-9007199254740993));
    }

    #[test]
    fn floats_stay_floats() {
        let v = Json::Float(2.0);
        let s = v.dump();
        assert_eq!(s, "2.0");
        assert_eq!(Json::parse(&s).unwrap().as_f64(), Some(2.0));
        assert_eq!(Json::Float(12.5e6).dump(), "12500000.0");
    }

    #[test]
    fn nested_structures_roundtrip() {
        let src = r#"{"meta":{"n":4,"workload":"hpl"},"events":[{"ev":"send","t":5,"bytes":100},[1,2,3],null]}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.dump(), src);
        let pretty = v.pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{8}\u{1}é—🚀";
        let v = Json::Str(s.to_string());
        assert_eq!(Json::parse(&v.dump()).unwrap().as_str(), Some(s));
        // Unicode escapes parse too.
        assert_eq!(Json::parse(r#""é 🚀""#).unwrap().as_str(), Some("é 🚀"));
    }

    #[test]
    fn field_accessors() {
        let v = Json::parse(r#"{"n":8,"f":1.5,"s":"x","a":[1],"b":true}"#).unwrap();
        assert_eq!(v.u64_field("n").unwrap(), 8);
        assert_eq!(v.usize_field("n").unwrap(), 8);
        assert_eq!(v.f64_field("n").unwrap(), 8.0);
        assert_eq!(v.f64_field("f").unwrap(), 1.5);
        assert_eq!(v.str_field("s").unwrap(), "x");
        assert_eq!(v.arr_field("a").unwrap().len(), 1);
        assert_eq!(v.field("b").unwrap().as_bool(), Some(true));
        assert!(v.field("missing").is_err());
        assert!(v.u64_field("s").is_err());
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{\"a\":1}x",
            "[1 2]",
            "{\"a\" 1}",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" {\n\t\"a\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(v.arr_field("a").unwrap().len(), 2);
    }

    #[test]
    fn builders() {
        let v = Json::obj([
            ("n", Json::from(4u64)),
            ("label", Json::from("gp")),
            (
                "list",
                Json::from(vec![Json::from(1u64), Json::from(-2i64)]),
            ),
        ]);
        assert_eq!(v.dump(), r#"{"n":4,"label":"gp","list":[1,-2]}"#);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).dump(), "null");
        assert_eq!(Json::Float(f64::INFINITY).dump(), "null");
    }
}
