//! The grouping strategies compared in the paper's evaluation (§5.1).

use gcr_trace::Trace;

use crate::def::GroupDef;
use crate::formation::form_groups;

/// The four grouping modes of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// `GP` — trace-assisted formation (Algorithm 2) with max group size.
    Trace {
        /// Maximum group size `G`.
        max_size: usize,
    },
    /// `GP1` — one process per group: uncoordinated checkpointing with
    /// full message logging.
    Singletons,
    /// `GP4`-style ad-hoc grouping: `k` groups of sequential ranks.
    Contiguous {
        /// Number of groups.
        groups: usize,
    },
    /// `NORM` — one global group: plain coordinated checkpointing.
    Single,
}

impl Strategy {
    /// The paper's `GP4` (four contiguous groups).
    pub fn gp4() -> Strategy {
        Strategy::Contiguous { groups: 4 }
    }

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Trace { .. } => "GP",
            Strategy::Singletons => "GP1",
            Strategy::Contiguous { .. } => "GP4",
            Strategy::Single => "NORM",
        }
    }

    /// Materialize the strategy into a [`GroupDef`]. `trace` is only
    /// required for [`Strategy::Trace`].
    ///
    /// # Panics
    /// Panics if `Strategy::Trace` is used without a trace, or parameters
    /// are degenerate (0 groups, contiguous groups > n).
    pub fn build(&self, n: usize, trace: Option<&Trace>) -> GroupDef {
        match *self {
            Strategy::Trace { max_size } => {
                let tr = trace.expect("Strategy::Trace requires a communication trace");
                assert_eq!(tr.meta.n, n, "trace world size mismatch");
                form_groups(tr, max_size)
            }
            Strategy::Singletons => singletons(n),
            Strategy::Contiguous { groups } => contiguous(n, groups),
            Strategy::Single => single(n),
        }
    }
}

/// One group per process (`GP1`).
pub fn singletons(n: usize) -> GroupDef {
    GroupDef::new(n, (0..n as u32).map(|r| vec![r]).collect()).expect("valid by construction")
}

/// One global group (`NORM`).
pub fn single(n: usize) -> GroupDef {
    GroupDef::new(n, vec![(0..n as u32).collect()]).expect("valid by construction")
}

/// `k` groups of sequential ranks, sizes as equal as possible (`GP4` uses
/// `k = 4`).
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
pub fn contiguous(n: usize, k: usize) -> GroupDef {
    assert!(k > 0 && k <= n, "need 1..=n groups");
    let base = n / k;
    let extra = n % k;
    let mut groups = Vec::with_capacity(k);
    let mut next = 0u32;
    for i in 0..k {
        let size = base + usize::from(i < extra);
        groups.push((next..next + size as u32).collect());
        next += size as u32;
    }
    GroupDef::new(n, groups).expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_shape() {
        let def = singletons(5);
        assert_eq!(def.group_count(), 5);
        assert_eq!(def.max_group_size(), 1);
    }

    #[test]
    fn single_shape() {
        let def = single(5);
        assert_eq!(def.group_count(), 1);
        assert_eq!(def.max_group_size(), 5);
    }

    #[test]
    fn contiguous_equal_split() {
        let def = contiguous(8, 4);
        assert_eq!(def.group_count(), 4);
        assert_eq!(def.members(0), &[0, 1]);
        assert_eq!(def.members(3), &[6, 7]);
    }

    #[test]
    fn contiguous_uneven_split() {
        let def = contiguous(10, 4);
        let sizes: Vec<usize> = def.groups().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_eq!(def.members(0), &[0, 1, 2]);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Strategy::Trace { max_size: 8 }.label(), "GP");
        assert_eq!(Strategy::Singletons.label(), "GP1");
        assert_eq!(Strategy::gp4().label(), "GP4");
        assert_eq!(Strategy::Single.label(), "NORM");
    }

    #[test]
    fn build_dispatches() {
        assert_eq!(Strategy::Singletons.build(4, None).group_count(), 4);
        assert_eq!(Strategy::Single.build(4, None).group_count(), 1);
        assert_eq!(Strategy::gp4().build(8, None).group_count(), 4);
    }

    #[test]
    #[should_panic(expected = "requires a communication trace")]
    fn trace_strategy_needs_trace() {
        let _ = Strategy::Trace { max_size: 4 }.build(4, None);
    }
}
