//! # gcr-group — trace-assisted process group formation
//!
//! The paper's Algorithm 2 ([`formation`]): merge intensively-communicating
//! rank pairs into checkpoint groups under a maximum-size bound (default
//! ⌈√n⌉), producing a [`def::GroupDef`] partition. The evaluation's four
//! grouping modes (GP / GP1 / GP4 / NORM) are in [`strategy`].

#![warn(missing_docs)]

pub mod def;
pub mod formation;
pub mod strategy;
pub mod windowed;

pub use def::{GroupDef, GroupDefError, GroupId};
pub use formation::{
    default_max_group_size, form_groups, form_groups_default, form_groups_from_flows,
};
pub use strategy::{contiguous, single, singletons, Strategy};
pub use windowed::{detect_phases, is_stationary, Phase};
