//! Group definitions: a partition of ranks into checkpoint groups.
//!
//! A `GroupDef` is the artifact the paper's trace analysis produces (the
//! "group definition file" consumed by `mpirun` and the checkpoint layer).

use std::collections::BTreeSet;
use std::path::Path;

use gcr_json::{Json, JsonError};

/// Identifier of a group within a [`GroupDef`].
pub type GroupId = usize;

/// A complete partition of ranks `0..n` into disjoint, non-empty groups.
///
/// ```
/// use gcr_group::GroupDef;
///
/// let def = GroupDef::new(4, vec![vec![0, 1], vec![2, 3]]).unwrap();
/// assert_eq!(def.group_count(), 2);
/// assert!(def.is_intra(0, 1));
/// assert_eq!(def.out_of_group(0), vec![2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupDef {
    /// World size.
    n: usize,
    /// The groups; each inner vec is sorted ascending.
    groups: Vec<Vec<u32>>,
    /// rank → group index (rebuilt on load, never serialized).
    index: Vec<GroupId>,
}

/// Errors from constructing or loading a [`GroupDef`].
#[derive(Debug)]
pub enum GroupDefError {
    /// The groups do not form a partition of `0..n`.
    NotAPartition(String),
    /// Filesystem error.
    Io(std::io::Error),
    /// Malformed file.
    Format(JsonError),
}

impl std::fmt::Display for GroupDefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupDefError::NotAPartition(msg) => write!(f, "invalid group definition: {msg}"),
            GroupDefError::Io(e) => write!(f, "group definition io error: {e}"),
            GroupDefError::Format(e) => write!(f, "group definition format error: {e}"),
        }
    }
}

impl std::error::Error for GroupDefError {}

impl GroupDef {
    /// Build from explicit groups, validating the partition property.
    ///
    /// # Errors
    /// [`GroupDefError::NotAPartition`] if any rank of `0..n` is missing,
    /// duplicated, out of range, or a group is empty.
    pub fn new(n: usize, mut groups: Vec<Vec<u32>>) -> Result<Self, GroupDefError> {
        let mut seen = BTreeSet::new();
        for g in &mut groups {
            if g.is_empty() {
                return Err(GroupDefError::NotAPartition("empty group".into()));
            }
            g.sort_unstable();
            for &r in g.iter() {
                if r as usize >= n {
                    return Err(GroupDefError::NotAPartition(format!(
                        "rank {r} out of range"
                    )));
                }
                if !seen.insert(r) {
                    return Err(GroupDefError::NotAPartition(format!("rank {r} duplicated")));
                }
            }
        }
        if seen.len() != n {
            return Err(GroupDefError::NotAPartition(format!(
                "{} ranks assigned, world has {n}",
                seen.len()
            )));
        }
        // Canonical order: groups sorted by their smallest member.
        groups.sort_by_key(|g| g[0]);
        let mut index = vec![0usize; n];
        for (gid, g) in groups.iter().enumerate() {
            for &r in g {
                index[r as usize] = gid;
            }
        }
        Ok(GroupDef { n, groups, index })
    }

    /// World size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The group containing `rank`.
    pub fn group_of(&self, rank: u32) -> GroupId {
        self.index[rank as usize]
    }

    /// Members of group `gid`, sorted ascending.
    pub fn members(&self, gid: GroupId) -> &[u32] {
        &self.groups[gid]
    }

    /// All groups.
    pub fn groups(&self) -> &[Vec<u32>] {
        &self.groups
    }

    /// Whether two ranks share a group.
    pub fn is_intra(&self, a: u32, b: u32) -> bool {
        self.group_of(a) == self.group_of(b)
    }

    /// Size of the largest group.
    pub fn max_group_size(&self) -> usize {
        self.groups.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Ranks outside `rank`'s group (the paper's "out-of-group processes").
    pub fn out_of_group(&self, rank: u32) -> Vec<u32> {
        let gid = self.group_of(rank);
        (0..self.n as u32)
            .filter(|&r| self.index[r as usize] != gid)
            .collect()
    }

    /// The on-disk JSON representation: `{"n":N,"groups":[[..],..]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("n", Json::from(self.n)),
            (
                "groups",
                Json::Arr(
                    self.groups
                        .iter()
                        .map(|g| Json::Arr(g.iter().map(|&r| Json::from(r)).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse from a JSON string, re-validating the partition and rebuilding
    /// the rank index (as safe as [`GroupDef::load`]).
    ///
    /// # Errors
    /// [`GroupDefError`] on parse or partition violation.
    pub fn from_json_str(s: &str) -> Result<Self, GroupDefError> {
        let v = Json::parse(s).map_err(GroupDefError::Format)?;
        let n = v.usize_field("n").map_err(GroupDefError::Format)?;
        let groups = v
            .arr_field("groups")
            .map_err(GroupDefError::Format)?
            .iter()
            .map(|g| {
                g.as_arr()
                    .ok_or_else(|| JsonError::msg("group is not an array"))?
                    .iter()
                    .map(|r| {
                        r.as_u64()
                            .and_then(|u| u32::try_from(u).ok())
                            .ok_or_else(|| JsonError::msg("rank is not a u32"))
                    })
                    .collect::<Result<Vec<u32>, JsonError>>()
            })
            .collect::<Result<Vec<_>, JsonError>>()
            .map_err(GroupDefError::Format)?;
        GroupDef::new(n, groups)
    }

    /// Save as JSON.
    ///
    /// # Errors
    /// [`GroupDefError::Io`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), GroupDefError> {
        std::fs::write(path, self.to_json().pretty()).map_err(GroupDefError::Io)
    }

    /// Load from JSON (re-validates the partition and rebuilds the rank
    /// index).
    ///
    /// # Errors
    /// [`GroupDefError`] on IO, parse, or partition violation.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, GroupDefError> {
        let text = std::fs::read_to_string(path).map_err(GroupDefError::Io)?;
        GroupDef::from_json_str(&text)
    }
}

impl std::fmt::Display for GroupDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} ranks in {} group(s):", self.n, self.groups.len())?;
        for (i, g) in self.groups.iter().enumerate() {
            let ranks: Vec<String> = g.iter().map(|r| r.to_string()).collect();
            writeln!(f, "  group {}: {}", i + 1, ranks.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_partition_builds() {
        let def = GroupDef::new(6, vec![vec![3, 4, 5], vec![0, 1, 2]]).unwrap();
        assert_eq!(def.group_count(), 2);
        // Canonicalized: group 0 starts at rank 0.
        assert_eq!(def.members(0), &[0, 1, 2]);
        assert_eq!(def.group_of(4), 1);
        assert!(def.is_intra(0, 2));
        assert!(!def.is_intra(2, 3));
        assert_eq!(def.out_of_group(0), vec![3, 4, 5]);
        assert_eq!(def.max_group_size(), 3);
    }

    #[test]
    fn missing_rank_rejected() {
        assert!(matches!(
            GroupDef::new(4, vec![vec![0, 1, 2]]),
            Err(GroupDefError::NotAPartition(_))
        ));
    }

    #[test]
    fn duplicate_rank_rejected() {
        assert!(GroupDef::new(3, vec![vec![0, 1], vec![1, 2]]).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(GroupDef::new(2, vec![vec![0, 1, 2]]).is_err());
    }

    #[test]
    fn empty_group_rejected() {
        assert!(GroupDef::new(2, vec![vec![0, 1], vec![]]).is_err());
    }

    #[test]
    fn save_load_roundtrip() {
        let def = GroupDef::new(4, vec![vec![0, 2], vec![1, 3]]).unwrap();
        let dir = std::env::temp_dir().join("gcr-group-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.json");
        def.save(&path).unwrap();
        let back = GroupDef::load(&path).unwrap();
        assert_eq!(back, def);
        assert_eq!(back.group_of(3), def.group_of(3)); // index rebuilt
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn display_lists_groups() {
        let def = GroupDef::new(3, vec![vec![0], vec![1, 2]]).unwrap();
        let s = format!("{def}");
        assert!(s.contains("group 1: 0"));
        assert!(s.contains("group 2: 1, 2"));
    }
}

#[cfg(test)]
mod json_hardening {
    use super::*;

    #[test]
    fn raw_parse_rebuilds_the_index() {
        let def = GroupDef::new(4, vec![vec![0, 2], vec![1, 3]]).unwrap();
        let json = def.to_json().dump();
        let back = GroupDef::from_json_str(&json).unwrap();
        // group_of works (the index was rebuilt, not left empty).
        assert_eq!(back.group_of(3), def.group_of(3));
        assert_eq!(back, def);
    }

    #[test]
    fn raw_parse_rejects_non_partitions() {
        let bad = r#"{"n":4,"groups":[[0,1],[1,2,3]]}"#;
        assert!(GroupDef::from_json_str(bad).is_err());
        let missing = r#"{"n":4,"groups":[[0,1]]}"#;
        assert!(GroupDef::from_json_str(missing).is_err());
    }
}
