//! Trace-assisted group formation — the paper's **Algorithm 2**, verbatim.
//!
//! Input: the pair flows from `gcr-trace` (send records collapsed by
//! unordered pair, sorted by total size, then count), a maximum group size
//! `G`, and the world size `n`. Tuples are scanned in order; each either
//! seeds a new group, joins an existing group, or merges two groups —
//! always subject to the size bound. Ranks left unassigned (no traffic, or
//! every candidate merge would exceed `G`) become singleton groups, since a
//! group definition must partition the world.

use std::collections::BTreeSet;

use gcr_trace::{pair_flows, PairFlow, Trace};

use crate::def::GroupDef;

/// Default maximum group size: ⌈√n⌉ (paper §3.2).
pub fn default_max_group_size(n: usize) -> usize {
    (n as f64).sqrt().ceil() as usize
}

/// One working tuple of Algorithm 2: a set of processes with accumulated
/// message count and bytes.
#[derive(Debug, Clone)]
struct Tuple {
    procs: BTreeSet<u32>,
    count: u64,
    bytes: u64,
}

/// Run Algorithm 2 on pre-aggregated pair flows.
///
/// # Panics
/// Panics if `g == 0`.
pub fn form_groups_from_flows(flows: &[PairFlow], n: usize, g: usize) -> GroupDef {
    assert!(g > 0, "max group size must be positive");
    // M: live output tuples. `find` is the paper's "first tuple containing
    // the process"; because groups are disjoint we keep a rank → tuple map.
    let mut m: Vec<Option<Tuple>> = Vec::new();
    let mut owner: Vec<Option<usize>> = vec![None; n];

    for flow in flows {
        let li = Tuple {
            procs: [flow.a, flow.b].into_iter().collect(),
            count: flow.count,
            bytes: flow.bytes,
        };
        let r1 = owner[flow.a as usize];
        let r2 = owner[flow.b as usize];
        match (r1, r2) {
            (None, None) => {
                let idx = m.len();
                owner[flow.a as usize] = Some(idx);
                owner[flow.b as usize] = Some(idx);
                m.push(Some(li));
            }
            (Some(i), None) => {
                let t = m[i].as_mut().expect("stale owner");
                if t.procs.len() < g {
                    t.procs.insert(flow.b);
                    t.count += li.count;
                    t.bytes += li.bytes;
                    owner[flow.b as usize] = Some(i);
                }
            }
            (None, Some(j)) => {
                let t = m[j].as_mut().expect("stale owner");
                if t.procs.len() < g {
                    t.procs.insert(flow.a);
                    t.count += li.count;
                    t.bytes += li.bytes;
                    owner[flow.a as usize] = Some(j);
                }
            }
            (Some(i), Some(j)) if i == j => {
                let t = m[i].as_mut().expect("stale owner");
                t.count += li.count;
                t.bytes += li.bytes;
            }
            (Some(i), Some(j)) => {
                let merged_size = {
                    let (ti, tj) = (m[i].as_ref().unwrap(), m[j].as_ref().unwrap());
                    ti.procs.union(&tj.procs).count()
                };
                if merged_size <= g {
                    let tj = m[j].take().expect("stale owner");
                    let ti = m[i].as_mut().expect("stale owner");
                    for &p in &tj.procs {
                        owner[p as usize] = Some(i);
                    }
                    ti.procs.extend(tj.procs);
                    ti.count += tj.count + li.count;
                    ti.bytes += tj.bytes + li.bytes;
                }
            }
        }
    }

    // Output: groups from the surviving tuples; unassigned ranks become
    // singletons so the result is a complete partition.
    let mut groups: Vec<Vec<u32>> = m
        .into_iter()
        .flatten()
        .map(|t| t.procs.into_iter().collect())
        .collect();
    for r in 0..n as u32 {
        if owner[r as usize].is_none() {
            groups.push(vec![r]);
        }
    }
    GroupDef::new(n, groups).expect("Algorithm 2 produced a non-partition")
}

/// Run Algorithm 2 end-to-end on a trace with the given size bound.
///
/// ```
/// use gcr_trace::{record::TraceEvent, Trace};
///
/// // 0↔1 and 2↔3 talk heavily; a light 1↔2 link exists.
/// let mut tr = Trace::new(4, "demo");
/// for (src, dst, bytes) in [(0, 1, 1000), (2, 3, 1000), (1, 2, 10)] {
///     tr.events.push(TraceEvent::Send { t: 0, src, dst, tag: 0, bytes });
/// }
/// let def = gcr_group::form_groups(&tr, 2);
/// assert!(def.is_intra(0, 1));
/// assert!(def.is_intra(2, 3));
/// assert!(!def.is_intra(1, 2)); // the bound forbids the 4-way merge
/// ```
pub fn form_groups(trace: &Trace, g: usize) -> GroupDef {
    form_groups_from_flows(&pair_flows(trace), trace.meta.n, g)
}

/// Run Algorithm 2 with the default ⌈√n⌉ bound.
pub fn form_groups_default(trace: &Trace) -> GroupDef {
    form_groups(trace, default_max_group_size(trace.meta.n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_trace::record::TraceEvent;

    fn trace_with(n: usize, sends: &[(u32, u32, u64)]) -> Trace {
        let mut tr = Trace::new(n, "t");
        for (i, &(src, dst, bytes)) in sends.iter().enumerate() {
            tr.events.push(TraceEvent::Send {
                t: i as u64,
                src,
                dst,
                tag: 0,
                bytes,
            });
        }
        tr
    }

    #[test]
    fn default_bound_is_ceil_sqrt() {
        assert_eq!(default_max_group_size(32), 6);
        assert_eq!(default_max_group_size(64), 8);
        assert_eq!(default_max_group_size(128), 12);
        assert_eq!(default_max_group_size(1), 1);
    }

    #[test]
    fn heavy_pairs_group_first() {
        // 0↔1 heavy, 2↔3 heavy, 1↔2 light; G=2 forbids the 4-merge.
        let tr = trace_with(4, &[(0, 1, 1000), (2, 3, 1000), (1, 2, 10)]);
        let def = form_groups(&tr, 2);
        assert!(def.is_intra(0, 1));
        assert!(def.is_intra(2, 3));
        assert!(!def.is_intra(1, 2));
    }

    #[test]
    fn light_link_merges_when_bound_allows() {
        let tr = trace_with(4, &[(0, 1, 1000), (2, 3, 1000), (1, 2, 10)]);
        let def = form_groups(&tr, 4);
        assert_eq!(def.group_count(), 1);
    }

    #[test]
    fn isolated_ranks_become_singletons() {
        let tr = trace_with(5, &[(0, 1, 100)]);
        let def = form_groups(&tr, 4);
        assert_eq!(def.group_count(), 4); // {0,1}, {2}, {3}, {4}
        assert!(def.is_intra(0, 1));
        assert_eq!(def.members(def.group_of(2)), &[2]);
    }

    #[test]
    fn chain_does_not_exceed_bound() {
        // A communication chain 0-1-2-3-4 with descending weights; G=3.
        let tr = trace_with(5, &[(0, 1, 500), (1, 2, 400), (2, 3, 300), (3, 4, 200)]);
        let def = form_groups(&tr, 3);
        assert!(def.max_group_size() <= 3);
        // Heaviest links grouped first: {0,1,2} forms, then (2,3) can't
        // join (full), so (3,4) forms its own pair.
        assert!(def.is_intra(0, 1));
        assert!(def.is_intra(1, 2));
        assert!(def.is_intra(3, 4));
        assert!(!def.is_intra(2, 3));
    }

    #[test]
    fn existing_group_absorbs_new_member_joining_either_side() {
        let tr = trace_with(4, &[(1, 2, 1000), (0, 1, 500), (2, 3, 400)]);
        let def = form_groups(&tr, 4);
        assert_eq!(def.group_count(), 1);
    }

    #[test]
    fn intra_group_flow_just_accumulates() {
        // (0,1) then (0,1) again after grouping: no structural change.
        let tr = trace_with(2, &[(0, 1, 100), (1, 0, 100)]);
        let def = form_groups(&tr, 2);
        assert_eq!(def.group_count(), 1);
    }

    #[test]
    fn empty_trace_gives_all_singletons() {
        let tr = trace_with(4, &[]);
        let def = form_groups_default(&tr);
        assert_eq!(def.group_count(), 4);
    }

    #[test]
    fn round_robin_column_pattern_recovers_paper_table1() {
        // Synthetic HPL-like pattern for 32 ranks in an 8×4 grid,
        // row-major: rank = p*4 + q. Column traffic (same q) dominates.
        let n = 32;
        let (pp, qq) = (8u32, 4u32);
        let mut sends = Vec::new();
        for q in 0..qq {
            for p1 in 0..pp {
                for p2 in 0..pp {
                    if p1 != p2 {
                        sends.push((p1 * qq + q, p2 * qq + q, 10_000u64));
                    }
                }
            }
        }
        // Light row traffic.
        for p in 0..pp {
            for q1 in 0..qq {
                for q2 in 0..qq {
                    if q1 != q2 {
                        sends.push((p * qq + q1, p * qq + q2, 10u64));
                    }
                }
            }
        }
        let tr = trace_with(n, &sends);
        let def = form_groups(&tr, 8);
        assert_eq!(def.group_count(), 4);
        // Paper Table 1: group q = {q, q+4, q+8, …, q+28}.
        for q in 0..4u32 {
            let expected: Vec<u32> = (0..8).map(|p| p * 4 + q).collect();
            assert_eq!(def.members(def.group_of(q)), expected.as_slice());
        }
    }
}
