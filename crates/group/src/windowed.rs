//! Phase-aware group formation (the paper's §7 future work: "the change in
//! communication pattern in different stages of the application may lead to
//! a change in group formation").
//!
//! The trace is cut into fixed-length time windows; Algorithm 2 runs per
//! window; adjacent windows with identical formations are merged into
//! *phases*. The result both detects phase changes and suggests a
//! per-phase group schedule.

use gcr_trace::pair_flows;
use gcr_trace::record::{Trace, TraceEvent};

use crate::def::GroupDef;
use crate::formation::form_groups_from_flows;

/// One detected communication phase.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Start of the phase (ns).
    pub start: u64,
    /// End of the phase (ns, exclusive).
    pub end: u64,
    /// The formation that holds during the phase.
    pub groups: GroupDef,
    /// Number of send records the formation was derived from.
    pub sends: usize,
}

/// Slice a trace into `[t0, t1)` sub-traces by send time.
fn window_trace(trace: &Trace, t0: u64, t1: u64) -> Trace {
    let mut w = Trace::new(trace.meta.n, format!("{}[{t0},{t1})", trace.meta.workload));
    w.events.extend(
        trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Send { t, .. } if *t >= t0 && *t < t1))
            .cloned(),
    );
    w
}

/// Run Algorithm 2 over fixed windows of `window_ns` and merge adjacent
/// windows with identical formations into phases. Windows with no traffic
/// extend the preceding phase.
///
/// # Panics
/// Panics if `window_ns == 0`.
pub fn detect_phases(trace: &Trace, window_ns: u64, max_group_size: usize) -> Vec<Phase> {
    assert!(window_ns > 0, "window must be positive");
    let end = trace.end_time();
    let mut phases: Vec<Phase> = Vec::new();
    let mut t0 = 0u64;
    while t0 <= end {
        let t1 = t0.saturating_add(window_ns);
        let w = window_trace(trace, t0, t1);
        let sends = w.send_count();
        if sends > 0 {
            let def = form_groups_from_flows(&pair_flows(&w), trace.meta.n, max_group_size);
            match phases.last_mut() {
                Some(last) if last.groups == def => {
                    last.end = t1;
                    last.sends += sends;
                }
                _ => phases.push(Phase {
                    start: t0,
                    end: t1,
                    groups: def,
                    sends,
                }),
            }
        } else if let Some(last) = phases.last_mut() {
            last.end = t1;
        }
        if t1 == u64::MAX {
            break;
        }
        t0 = t1;
    }
    phases
}

/// True when the application's formation is stable across the whole trace
/// (a single phase).
pub fn is_stationary(trace: &Trace, window_ns: u64, max_group_size: usize) -> bool {
    detect_phases(trace, window_ns, max_group_size).len() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(t: u64, src: u32, dst: u32, bytes: u64) -> TraceEvent {
        TraceEvent::Send {
            t,
            src,
            dst,
            tag: 0,
            bytes,
        }
    }

    /// Two phases: pairs (0,1)/(2,3) early, then (0,2)/(1,3).
    fn two_phase_trace() -> Trace {
        let mut tr = Trace::new(4, "two-phase");
        for i in 0..50 {
            tr.events.push(send(i * 10, 0, 1, 1000));
            tr.events.push(send(i * 10 + 5, 2, 3, 1000));
        }
        for i in 0..50 {
            tr.events.push(send(1000 + i * 10, 0, 2, 1000));
            tr.events.push(send(1005 + i * 10, 1, 3, 1000));
        }
        tr
    }

    #[test]
    fn detects_a_formation_change() {
        let tr = two_phase_trace();
        let phases = detect_phases(&tr, 500, 2);
        assert_eq!(phases.len(), 2, "{phases:#?}");
        assert!(phases[0].groups.is_intra(0, 1));
        assert!(phases[0].groups.is_intra(2, 3));
        assert!(phases[1].groups.is_intra(0, 2));
        assert!(phases[1].groups.is_intra(1, 3));
        assert!(!is_stationary(&tr, 500, 2));
    }

    #[test]
    fn stationary_trace_is_one_phase() {
        let mut tr = Trace::new(4, "stationary");
        for i in 0..100 {
            tr.events.push(send(i * 13, 0, 1, 500));
            tr.events.push(send(i * 13 + 3, 2, 3, 500));
        }
        let phases = detect_phases(&tr, 200, 2);
        assert_eq!(phases.len(), 1);
        assert!(is_stationary(&tr, 200, 2));
        assert_eq!(phases[0].sends, 200);
    }

    #[test]
    fn silent_windows_extend_the_phase() {
        let mut tr = Trace::new(2, "bursty");
        tr.events.push(send(0, 0, 1, 100));
        tr.events.push(send(10_000, 0, 1, 100)); // long silence between
        let phases = detect_phases(&tr, 100, 2);
        assert_eq!(phases.len(), 1);
        assert!(phases[0].end >= 10_000);
    }

    #[test]
    fn empty_trace_yields_no_phases() {
        let tr = Trace::new(4, "empty");
        assert!(detect_phases(&tr, 100, 2).is_empty());
        assert!(is_stationary(&tr, 100, 2));
    }
}
