//! Event shards for the sharded DES kernel.
//!
//! The executor partitions scheduled events into *shards* — one per
//! checkpoint group in the intended use — each with its own timer heap.
//! Every event still carries a sequence number drawn from one global
//! counter, so the merged firing order is the exact total order
//! `(deadline, schedule-sequence)` regardless of how events are assigned
//! to shards. Sharding therefore changes *where* an event waits, never
//! *when* it fires: digests are bit-identical across shard counts by
//! construction.
//!
//! The merge is driven by a conservative window: at each clock advance the
//! executor compares the head `(at, seq)` of every shard. If no other
//! shard holds an event at the winning instant, the whole instant is
//! drained from the winning shard alone — its heap already yields entries
//! in sequence order, so no cross-shard sort is needed. Group boundaries
//! make this the common case: intra-group traffic lands in the sender's
//! own shard, and only cross-group deliveries can force the slow
//! same-instant merge.
//!
//! Events live in an arena owned by the executor core ([`EventSlot`]);
//! heaps store only 24-byte [`HeapEntry`] keys. Slot lifetime rules are
//! documented on [`EventSlot`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::task::Waker;

use crate::time::SimTime;

/// What an event does when its deadline is reached.
pub(crate) enum EventKind {
    /// Wake a parked task (classic timer semantics).
    Wake(Waker),
    /// Run a closure on the executor — the arena-allocated replacement for
    /// spawning a short-lived "in-flight" task per message.
    Call(Box<dyn FnOnce()>),
}

/// Arena slot for a scheduled event.
///
/// Lifetime rules:
/// * A slot is allocated when the event is scheduled and holds
///   `kind: Some(_)` until the event is consumed.
/// * `Wake` slots are freed at fire time — the waker is extracted while
///   the heap entry is popped.
/// * `Call` slots outlive their heap entry: firing only enqueues the run
///   on the ready FIFO, and the closure is taken (and the slot freed) when
///   that FIFO entry drains. This mirrors the poll-after-wake lifecycle of
///   the task-per-message scheme it replaces, which is what keeps
///   same-instant ordering bit-identical.
/// * Slots are reused only after being freed; each slot has exactly one
///   heap entry and at most one pending ready-FIFO reference at a time, so
///   no generation counter is needed.
pub(crate) struct EventSlot {
    /// Absolute deadline.
    pub(crate) at: SimTime,
    /// Owning shard index (attribution only — never affects order).
    pub(crate) shard: u32,
    /// Payload; `None` once consumed (slot is free or about to be).
    pub(crate) kind: Option<EventKind>,
}

/// Key stored in a shard's timer heap, ordered by `(at, seq)`.
///
/// `seq` comes from the executor's single global counter, so comparing
/// entries from *different* shards is meaningful: the minimum over all
/// shard heads is the globally next event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct HeapEntry {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) slot: u32,
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One event shard: a min-heap of pending events.
pub(crate) struct Shard {
    heap: BinaryHeap<Reverse<HeapEntry>>,
}

impl Shard {
    pub(crate) fn new() -> Self {
        Shard {
            heap: BinaryHeap::new(),
        }
    }

    /// The `(at, seq)` key of the earliest pending event, if any.
    pub(crate) fn head(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|Reverse(e)| (e.at, e.seq))
    }

    /// Push an entry.
    pub(crate) fn push(&mut self, entry: HeapEntry) {
        self.heap.push(Reverse(entry));
    }

    /// Pop the earliest entry if its deadline is exactly `at`.
    pub(crate) fn pop_at(&mut self, at: SimTime) -> Option<HeapEntry> {
        match self.heap.peek() {
            Some(Reverse(e)) if e.at == at => self.heap.pop().map(|Reverse(e)| e),
            _ => None,
        }
    }

    /// Number of pending events in this shard.
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Snapshot of executor counters, for benchmarks and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Number of event shards.
    pub shard_count: usize,
    /// Task polls performed.
    pub polls: u64,
    /// Events fired off the shard heaps (wakes and calls).
    pub events_fired: u64,
    /// Scheduled closures run (arena-allocated in-flight work).
    pub calls_run: u64,
    /// Clock advances (cross-shard merge decisions).
    pub merges: u64,
    /// Merge decisions that needed the slow same-instant cross-shard path.
    pub window_batches: u64,
    /// Events drained through the slow same-instant path.
    pub window_events: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(at_ms: u64, seq: u64, slot: u32) -> HeapEntry {
        HeapEntry {
            at: SimTime::from_millis(at_ms),
            seq,
            slot,
        }
    }

    #[test]
    fn heap_entries_order_by_time_then_seq() {
        let mut sh = Shard::new();
        sh.push(e(5, 9, 0));
        sh.push(e(5, 3, 1));
        sh.push(e(2, 7, 2));
        assert_eq!(sh.head(), Some((SimTime::from_millis(2), 7)));
        assert_eq!(sh.pop_at(SimTime::from_millis(2)).map(|x| x.slot), Some(2));
        // Same instant drains in seq order.
        assert_eq!(sh.pop_at(SimTime::from_millis(5)).map(|x| x.seq), Some(3));
        assert_eq!(sh.pop_at(SimTime::from_millis(5)).map(|x| x.seq), Some(9));
        assert_eq!(sh.pop_at(SimTime::from_millis(5)), None);
        assert_eq!(sh.len(), 0);
    }

    #[test]
    fn pop_at_refuses_other_instants() {
        let mut sh = Shard::new();
        sh.push(e(10, 0, 0));
        assert_eq!(sh.pop_at(SimTime::from_millis(9)), None);
        assert_eq!(sh.len(), 1);
    }
}
