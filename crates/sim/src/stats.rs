//! Lightweight statistics collectors used by the metrics layers.

use crate::time::SimTime;

/// Streaming mean/variance/min/max via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.mean = (n1 * self.mean + n2 * other.mean) / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A bag of samples supporting exact quantiles. Use when the sample count is
/// modest (per-rank timings, per-checkpoint durations).
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// Empty sample set.
    pub fn new() -> Self {
        Samples { values: Vec::new() }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.sum() / self.values.len() as f64
        }
    }

    /// Exact q-quantile by nearest-rank on a sorted copy; `q` in `[0, 1]`.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut v = self.values.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let idx = ((q.clamp(0.0, 1.0)) * (v.len() - 1) as f64).round() as usize;
        v[idx]
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0)
    }

    /// Read-only view of raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// A time-stamped series of values (e.g. per-checkpoint durations over a run).
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append a point. Points are expected (but not required) to be in
    /// non-decreasing time order.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    /// All points, in insertion order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Sum of the value column.
    pub fn total(&self) -> f64 {
        self.points.iter().map(|(_, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn online_stats_empty_is_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_matches_concatenation() {
        let data: Vec<f64> = (0..100).map(|i| (i * 37 % 17) as f64).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..33] {
            a.push(x);
        }
        for &x in &data[33..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn samples_quantiles() {
        let mut s = Samples::new();
        for i in 1..=100 {
            s.push(i as f64);
        }
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert!((s.quantile(0.5) - 50.0).abs() <= 1.0);
        assert_eq!(s.max(), 100.0);
        assert!((s.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn time_series_accumulates() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 10.0);
        ts.push(SimTime::from_secs(2), 20.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.total(), 30.0);
        assert_eq!(ts.points()[1].0, SimTime::from_secs(2));
    }
}
