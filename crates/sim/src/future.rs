//! Minimal future combinators (the simulator avoids external async crates).

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Await two futures concurrently, returning both outputs.
pub fn join2<A, B>(a: A, b: B) -> Join2<A, B>
where
    A: Future,
    B: Future,
{
    Join2 {
        a: MaybeDone::Pending(a),
        b: MaybeDone::Pending(b),
    }
}

enum MaybeDone<F: Future> {
    Pending(F),
    Done(Option<F::Output>),
}

impl<F: Future> MaybeDone<F> {
    /// Polls the inner future if still pending; returns true when done.
    /// Safety: structural pinning — we never move the future once polled.
    fn poll_done(self: Pin<&mut Self>, cx: &mut Context<'_>) -> bool {
        // SAFETY: we never move the pinned future out; replacement happens
        // only after it has completed.
        let this = unsafe { self.get_unchecked_mut() };
        match this {
            MaybeDone::Pending(f) => {
                let pinned = unsafe { Pin::new_unchecked(f) };
                match pinned.poll(cx) {
                    Poll::Ready(out) => {
                        *this = MaybeDone::Done(Some(out));
                        true
                    }
                    Poll::Pending => false,
                }
            }
            MaybeDone::Done(_) => true,
        }
    }

    fn take(self: Pin<&mut Self>) -> F::Output {
        let this = unsafe { self.get_unchecked_mut() };
        match this {
            MaybeDone::Done(v) => v.take().expect("output already taken"),
            MaybeDone::Pending(_) => panic!("join2 output taken before completion"),
        }
    }
}

/// Future returned by [`join2`].
pub struct Join2<A: Future, B: Future> {
    a: MaybeDone<A>,
    b: MaybeDone<B>,
}

impl<A: Future, B: Future> Future for Join2<A, B> {
    type Output = (A::Output, B::Output);

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: structural pinning of both fields.
        let this = unsafe { self.get_unchecked_mut() };
        let a_done = unsafe { Pin::new_unchecked(&mut this.a) }.poll_done(cx);
        let b_done = unsafe { Pin::new_unchecked(&mut this.b) }.poll_done(cx);
        if a_done && b_done {
            let a = unsafe { Pin::new_unchecked(&mut this.a) }.take();
            let b = unsafe { Pin::new_unchecked(&mut this.b) }.take();
            Poll::Ready((a, b))
        } else {
            Poll::Pending
        }
    }
}

/// Await a dynamic set of futures, returning outputs in input order.
pub async fn join_all<F: Future>(futs: Vec<F>) -> Vec<F::Output> {
    let mut all = JoinAll {
        futs: futs
            .into_iter()
            .map(|f| MaybeDone::Pending(f))
            .map(Box::pin)
            .collect(),
    };
    (&mut all).await
}

struct JoinAll<F: Future> {
    futs: Vec<Pin<Box<MaybeDone<F>>>>,
}

impl<F: Future> Future for &mut JoinAll<F> {
    type Output = Vec<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = unsafe { self.get_unchecked_mut() };
        let mut all_done = true;
        for f in &mut this.futs {
            if !f.as_mut().poll_done(cx) {
                all_done = false;
            }
        }
        if all_done {
            Poll::Ready(this.futs.iter_mut().map(|f| f.as_mut().take()).collect())
        } else {
            Poll::Pending
        }
    }
}

/// Outcome of [`select2`].
pub enum Either<A, B> {
    /// The first future finished first.
    Left(A),
    /// The second future finished first.
    Right(B),
}

/// Await whichever of two futures completes first; the loser is dropped.
/// Ties (both ready on the same poll) resolve to the left.
pub fn select2<A, B>(a: A, b: B) -> Select2<A, B>
where
    A: Future,
    B: Future,
{
    Select2 { a, b }
}

/// Future returned by [`select2`].
pub struct Select2<A, B> {
    a: A,
    b: B,
}

impl<A: Future, B: Future> Future for Select2<A, B> {
    type Output = Either<A::Output, B::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: structural pinning; neither field is moved.
        let this = unsafe { self.get_unchecked_mut() };
        if let Poll::Ready(v) = unsafe { Pin::new_unchecked(&mut this.a) }.poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = unsafe { Pin::new_unchecked(&mut this.b) }.poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::{SimDuration, SimTime};
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn join2_runs_concurrently() {
        let sim = Sim::new();
        let s = sim.clone();
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d = Rc::clone(&done);
        sim.spawn(async move {
            let (a, b) = join2(
                async {
                    s.sleep(SimDuration::from_secs(3)).await;
                    "a"
                },
                async {
                    s.sleep(SimDuration::from_secs(5)).await;
                    "b"
                },
            )
            .await;
            assert_eq!((a, b), ("a", "b"));
            d.set(s.now());
        });
        sim.run().unwrap();
        // Concurrent: max(3, 5), not 8.
        assert_eq!(done.get(), SimTime::from_secs(5));
    }

    #[test]
    fn join_all_preserves_order_and_overlaps() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = Rc::new(Cell::new(SimTime::ZERO));
        let o = Rc::clone(&out);
        sim.spawn(async move {
            let futs: Vec<_> = (0..4u64)
                .map(|i| {
                    let s = s.clone();
                    async move {
                        s.sleep(SimDuration::from_secs(4 - i)).await;
                        i
                    }
                })
                .collect();
            let results = join_all(futs).await;
            assert_eq!(results, vec![0, 1, 2, 3]);
            o.set(s.now());
        });
        sim.run().unwrap();
        assert_eq!(out.get(), SimTime::from_secs(4));
    }

    #[test]
    fn select2_picks_the_faster() {
        let sim = Sim::new();
        let s = sim.clone();
        let winner = Rc::new(Cell::new(0u8));
        let w = Rc::clone(&winner);
        sim.spawn(async move {
            let r = select2(
                async {
                    s.sleep(SimDuration::from_secs(10)).await;
                    1u8
                },
                async {
                    s.sleep(SimDuration::from_secs(2)).await;
                    2u8
                },
            )
            .await;
            match r {
                Either::Left(v) | Either::Right(v) => w.set(v),
            }
        });
        sim.run().unwrap();
        assert_eq!(winner.get(), 2);
        // The losing sleep does not hold the sim at 10 s.
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn join_all_empty() {
        let sim = Sim::new();
        sim.spawn(async {
            let results: Vec<u8> = join_all(Vec::<std::future::Ready<u8>>::new()).await;
            assert!(results.is_empty());
        });
        sim.run().unwrap();
    }
}
