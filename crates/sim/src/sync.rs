//! Synchronization primitives for simulated tasks.
//!
//! These cost **zero simulated time** by themselves — they only order task
//! execution within an instant. Anything that should take time (network
//! transfers, disk writes, computation) must go through [`crate::Sim::sleep`]
//! or a [`crate::resource::FifoResource`].

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Wakes every waker in the list, draining it.
fn wake_all(waiters: &mut Vec<Waker>) {
    for w in waiters.drain(..) {
        w.wake();
    }
}

// ---------------------------------------------------------------------------
// Gate
// ---------------------------------------------------------------------------

/// A reusable open/closed gate. Tasks `await` [`Gate::wait_open`]; while the
/// gate is closed they park, and opening the gate releases them all.
///
/// Used to model "MPI is locked" / "sends are suspended" windows in the
/// checkpoint protocols.
#[derive(Clone)]
pub struct Gate {
    inner: Rc<RefCell<GateInner>>,
}

struct GateInner {
    open: bool,
    waiters: Vec<Waker>,
}

impl Gate {
    /// Create a gate in the given initial state.
    pub fn new(open: bool) -> Self {
        Gate {
            inner: Rc::new(RefCell::new(GateInner {
                open,
                waiters: Vec::new(),
            })),
        }
    }

    /// Open the gate, releasing all waiting tasks.
    pub fn open(&self) {
        let mut g = self.inner.borrow_mut();
        g.open = true;
        wake_all(&mut g.waiters);
    }

    /// Close the gate; subsequent waiters park until it reopens.
    pub fn close(&self) {
        self.inner.borrow_mut().open = false;
    }

    /// Whether the gate is currently open.
    pub fn is_open(&self) -> bool {
        self.inner.borrow().open
    }

    /// Completes once the gate is open (immediately if already open).
    pub fn wait_open(&self) -> GateWait {
        GateWait { gate: self.clone() }
    }
}

/// Future returned by [`Gate::wait_open`].
pub struct GateWait {
    gate: Gate,
}

impl Future for GateWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut g = self.gate.inner.borrow_mut();
        if g.open {
            Poll::Ready(())
        } else {
            g.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Event
// ---------------------------------------------------------------------------

/// A one-shot event: once [`Event::set`] is called every current and future
/// waiter completes. Cannot be reset.
#[derive(Clone)]
pub struct Event {
    inner: Rc<RefCell<EventInner>>,
}

struct EventInner {
    set: bool,
    waiters: Vec<Waker>,
}

impl Default for Event {
    fn default() -> Self {
        Self::new()
    }
}

impl Event {
    /// Create an unset event.
    pub fn new() -> Self {
        Event {
            inner: Rc::new(RefCell::new(EventInner {
                set: false,
                waiters: Vec::new(),
            })),
        }
    }

    /// Fire the event. Idempotent.
    pub fn set(&self) {
        let mut e = self.inner.borrow_mut();
        if !e.set {
            e.set = true;
            wake_all(&mut e.waiters);
        }
    }

    /// Whether the event has fired.
    pub fn is_set(&self) -> bool {
        self.inner.borrow().set
    }

    /// Completes once the event has fired.
    pub fn wait(&self) -> EventWait {
        EventWait {
            event: self.clone(),
        }
    }
}

/// Future returned by [`Event::wait`].
pub struct EventWait {
    event: Event,
}

impl Future for EventWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut e = self.event.inner.borrow_mut();
        if e.set {
            Poll::Ready(())
        } else {
            e.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

/// A counting semaphore. Permits are returned manually via
/// [`Semaphore::release`] (no RAII guard: simulated tasks usually hand
/// permits across task boundaries, e.g. bounded in-flight message windows).
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<RefCell<SemInner>>,
}

struct SemInner {
    permits: usize,
    waiters: Vec<Waker>,
}

impl Semaphore {
    /// Create a semaphore holding `permits` permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            inner: Rc::new(RefCell::new(SemInner {
                permits,
                waiters: Vec::new(),
            })),
        }
    }

    /// Acquire one permit, waiting if none are available.
    pub fn acquire(&self) -> SemAcquire {
        SemAcquire { sem: self.clone() }
    }

    /// Try to acquire a permit without waiting.
    pub fn try_acquire(&self) -> bool {
        let mut s = self.inner.borrow_mut();
        if s.permits > 0 {
            s.permits -= 1;
            true
        } else {
            false
        }
    }

    /// Return one permit, waking a waiter if any.
    pub fn release(&self) {
        let mut s = self.inner.borrow_mut();
        s.permits += 1;
        // Wake all; contenders re-check and at most `permits` proceed.
        wake_all(&mut s.waiters);
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.inner.borrow().permits
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct SemAcquire {
    sem: Semaphore,
}

impl Future for SemAcquire {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut s = self.sem.inner.borrow_mut();
        if s.permits > 0 {
            s.permits -= 1;
            Poll::Ready(())
        } else {
            s.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

/// A reusable barrier for `parties` tasks. The `parties`-th arrival releases
/// everyone and the barrier resets for the next generation.
///
/// Note: this is an *infrastructure* barrier (zero simulated cost). MPI
/// barriers in `gcr-mpi` are built from real messages instead.
#[derive(Clone)]
pub struct Barrier {
    inner: Rc<RefCell<BarrierInner>>,
}

struct BarrierInner {
    parties: usize,
    arrived: usize,
    generation: u64,
    waiters: Vec<Waker>,
}

impl Barrier {
    /// Create a barrier for `parties` participants.
    ///
    /// # Panics
    /// Panics if `parties == 0`.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        Barrier {
            inner: Rc::new(RefCell::new(BarrierInner {
                parties,
                arrived: 0,
                generation: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Arrive and wait for the rest of the generation.
    pub fn wait(&self) -> BarrierWait {
        let mut b = self.inner.borrow_mut();
        b.arrived += 1;
        let my_generation = b.generation;
        if b.arrived == b.parties {
            b.arrived = 0;
            b.generation += 1;
            wake_all(&mut b.waiters);
        }
        BarrierWait {
            barrier: self.clone(),
            generation: my_generation,
        }
    }
}

/// Future returned by [`Barrier::wait`].
pub struct BarrierWait {
    barrier: Barrier,
    generation: u64,
}

impl Future for BarrierWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut b = self.barrier.inner.borrow_mut();
        if b.generation > self.generation {
            Poll::Ready(())
        } else {
            b.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// WaitGroup
// ---------------------------------------------------------------------------

/// Go-style wait group: `add` registers pending work, `done` retires it,
/// `wait` completes when the count reaches zero.
///
/// Used for "wait until all group members finish taking the checkpoint".
#[derive(Clone)]
pub struct WaitGroup {
    inner: Rc<RefCell<WgInner>>,
}

struct WgInner {
    count: usize,
    waiters: Vec<Waker>,
}

impl Default for WaitGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitGroup {
    /// Create an empty wait group (count 0).
    pub fn new() -> Self {
        WaitGroup {
            inner: Rc::new(RefCell::new(WgInner {
                count: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Register `n` additional units of pending work.
    pub fn add(&self, n: usize) {
        self.inner.borrow_mut().count += n;
    }

    /// Retire one unit of work.
    ///
    /// # Panics
    /// Panics if the count is already zero.
    pub fn done(&self) {
        let mut w = self.inner.borrow_mut();
        assert!(w.count > 0, "WaitGroup::done called more times than add");
        w.count -= 1;
        if w.count == 0 {
            wake_all(&mut w.waiters);
        }
    }

    /// Current outstanding count.
    pub fn count(&self) -> usize {
        self.inner.borrow().count
    }

    /// Completes when the count is zero (immediately if already zero).
    pub fn wait(&self) -> WgWait {
        WgWait { wg: self.clone() }
    }
}

/// Future returned by [`WaitGroup::wait`].
pub struct WgWait {
    wg: WaitGroup,
}

impl Future for WgWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut w = self.wg.inner.borrow_mut();
        if w.count == 0 {
            Poll::Ready(())
        } else {
            w.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::Cell;

    #[test]
    fn gate_blocks_until_open() {
        let sim = Sim::new();
        let gate = Gate::new(false);
        let passed = Rc::new(Cell::new(false));
        {
            let g = gate.clone();
            let p = Rc::clone(&passed);
            sim.spawn(async move {
                g.wait_open().await;
                p.set(true);
            });
        }
        {
            let g = gate.clone();
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_secs(1)).await;
                g.open();
            });
        }
        sim.run().unwrap();
        assert!(passed.get());
        assert_eq!(sim.now().as_secs_f64(), 1.0);
    }

    #[test]
    fn gate_reusable_after_close() {
        let sim = Sim::new();
        let gate = Gate::new(true);
        gate.close();
        assert!(!gate.is_open());
        gate.open();
        assert!(gate.is_open());
        let g = gate.clone();
        sim.spawn(async move {
            g.wait_open().await; // open: passes immediately
        });
        sim.run().unwrap();
    }

    #[test]
    fn event_releases_all_waiters() {
        let sim = Sim::new();
        let event = Event::new();
        let count = Rc::new(Cell::new(0));
        for _ in 0..5 {
            let e = event.clone();
            let c = Rc::clone(&count);
            sim.spawn(async move {
                e.wait().await;
                c.set(c.get() + 1);
            });
        }
        let e = event.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_millis(10)).await;
            e.set();
        });
        sim.run().unwrap();
        assert_eq!(count.get(), 5);
        // Late waiters also pass.
        let c = Rc::clone(&count);
        let e2 = event.clone();
        sim.spawn(async move {
            e2.wait().await;
            c.set(c.get() + 1);
        });
        sim.run().unwrap();
        assert_eq!(count.get(), 6);
    }

    #[test]
    fn semaphore_bounds_concurrency() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let active = Rc::new(Cell::new(0usize));
        let max_active = Rc::new(Cell::new(0usize));
        for _ in 0..6 {
            let sem = sem.clone();
            let s = sim.clone();
            let a = Rc::clone(&active);
            let m = Rc::clone(&max_active);
            sim.spawn(async move {
                sem.acquire().await;
                a.set(a.get() + 1);
                m.set(m.get().max(a.get()));
                s.sleep(SimDuration::from_millis(10)).await;
                a.set(a.get() - 1);
                sem.release();
            });
        }
        sim.run().unwrap();
        assert_eq!(max_active.get(), 2);
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn try_acquire_does_not_block() {
        let sem = Semaphore::new(1);
        assert!(sem.try_acquire());
        assert!(!sem.try_acquire());
        sem.release();
        assert!(sem.try_acquire());
    }

    #[test]
    fn barrier_synchronizes_generations() {
        let sim = Sim::new();
        let barrier = Barrier::new(3);
        let log = Rc::new(RefCell::new(Vec::new()));
        for id in 0..3u32 {
            let b = barrier.clone();
            let s = sim.clone();
            let l = Rc::clone(&log);
            sim.spawn(async move {
                for round in 0..2u32 {
                    s.sleep(SimDuration::from_millis((id as u64 + 1) * 10))
                        .await;
                    l.borrow_mut().push((round, id, "arrive"));
                    b.wait().await;
                    l.borrow_mut().push((round, id, "pass"));
                }
            });
        }
        sim.run().unwrap();
        let log = log.borrow();
        // Within each round, all arrivals precede all passes.
        for round in 0..2u32 {
            let arrives: Vec<usize> = log
                .iter()
                .enumerate()
                .filter(|(_, e)| e.0 == round && e.2 == "arrive")
                .map(|(i, _)| i)
                .collect();
            let passes: Vec<usize> = log
                .iter()
                .enumerate()
                .filter(|(_, e)| e.0 == round && e.2 == "pass")
                .map(|(i, _)| i)
                .collect();
            assert_eq!(arrives.len(), 3);
            assert_eq!(passes.len(), 3);
            assert!(arrives.iter().max().unwrap() < passes.iter().min().unwrap());
        }
    }

    #[test]
    fn waitgroup_waits_for_all() {
        let sim = Sim::new();
        let wg = WaitGroup::new();
        wg.add(3);
        let finished = Rc::new(Cell::new(false));
        {
            let w = wg.clone();
            let f = Rc::clone(&finished);
            sim.spawn(async move {
                w.wait().await;
                f.set(true);
            });
        }
        for i in 0..3u64 {
            let w = wg.clone();
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_millis(i * 5)).await;
                w.done();
            });
        }
        sim.run().unwrap();
        assert!(finished.get());
        assert_eq!(wg.count(), 0);
    }

    #[test]
    fn waitgroup_zero_passes_immediately() {
        let sim = Sim::new();
        let wg = WaitGroup::new();
        let w = wg.clone();
        sim.spawn(async move { w.wait().await });
        sim.run().unwrap();
    }
}
