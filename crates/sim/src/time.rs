//! Simulated time: a nanosecond-resolution monotonic clock.
//!
//! All of `gcr` runs on simulated time. Using integer nanoseconds (rather
//! than `f64` seconds) keeps event ordering total and deterministic: two
//! runs with the same seed produce bit-identical schedules.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in nanoseconds since the start of
/// the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime {
    ns: u64,
}

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration {
    ns: u64,
}

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime { ns: 0 };
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime { ns: u64::MAX };

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime { ns }
    }

    /// Construct from whole simulated seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime {
            ns: s * 1_000_000_000,
        }
    }

    /// Construct from whole simulated milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime { ns: ms * 1_000_000 }
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "SimTime must be non-negative and finite"
        );
        SimTime {
            ns: (s * 1e9).round() as u64,
        }
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.ns
    }

    /// Seconds since the epoch as `f64` (lossy above ~2^53 ns).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.ns as f64 / 1e9
    }

    /// Time elapsed since `earlier`; saturates to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration {
            ns: self.ns.saturating_sub(earlier.ns),
        }
    }

    /// Checked difference between two instants.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.ns.checked_sub(earlier.ns).map(|ns| SimDuration { ns })
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration { ns: 0 };
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration { ns: u64::MAX };

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration { ns }
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration { ns: us * 1_000 }
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration { ns: ms * 1_000_000 }
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration {
            ns: s * 1_000_000_000,
        }
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond).
    ///
    /// # Panics
    /// Panics if `s` is negative, NaN, or infinite.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "SimDuration must be non-negative and finite"
        );
        SimDuration {
            ns: (s * 1e9).round() as u64,
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.ns
    }

    /// Length in seconds as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.ns as f64 / 1e9
    }

    /// True when this duration is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.ns == 0
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            ns: self.ns.saturating_add(rhs.ns),
        }
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            ns: self.ns.saturating_sub(rhs.ns),
        }
    }

    /// Multiply by an `f64` scale factor (rounds to nearest nanosecond).
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(
            k >= 0.0 && k.is_finite(),
            "scale must be non-negative and finite"
        );
        SimDuration {
            ns: (self.ns as f64 * k).round() as u64,
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime {
            ns: self.ns.checked_add(rhs.ns).expect("SimTime overflow"),
        }
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime {
            ns: self.ns.checked_sub(rhs.ns).expect("SimTime underflow"),
        }
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration {
            ns: self.ns.checked_sub(rhs.ns).expect("negative SimDuration"),
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            ns: self.ns.checked_add(rhs.ns).expect("SimDuration overflow"),
        }
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            ns: self.ns.checked_sub(rhs.ns).expect("negative SimDuration"),
        }
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration {
            ns: self.ns.checked_mul(rhs).expect("SimDuration overflow"),
        }
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration { ns: self.ns / rhs }
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns == u64::MAX {
        write!(f, "inf")
    } else if ns >= 1_000_000_000 {
        write!(f, "{:.6}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{}ns", ns)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_ns(self.ns, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.ns, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.ns, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.ns, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((SimTime::from_secs_f64(2.25).as_secs_f64() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d).as_nanos(), 14_000_000_000);
        assert_eq!((t - d).as_nanos(), 6_000_000_000);
        assert_eq!(((t + d) - t).as_nanos(), d.as_nanos());
        assert_eq!((d * 3).as_nanos(), 12_000_000_000);
        assert_eq!((d / 2).as_nanos(), 2_000_000_000);
        assert_eq!(d.mul_f64(0.5).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(early.checked_since(late), None);
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_secs(1)),
            SimDuration::MAX
        );
    }

    #[test]
    #[should_panic(expected = "negative SimDuration")]
    fn negative_duration_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime::from_secs(3), SimTime::ZERO, SimTime::from_nanos(5)];
        v.sort();
        assert_eq!(
            v,
            vec![SimTime::ZERO, SimTime::from_nanos(5), SimTime::from_secs(3)]
        );
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000000s");
        assert_eq!(format!("{}", SimDuration::MAX), "inf");
    }
}
