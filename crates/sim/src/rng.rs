//! Deterministic random numbers with hierarchical substreams.
//!
//! Every stochastic element of the simulation (straggler delays, jittered
//! compute, random workloads) draws from a [`DetRng`] forked from the
//! experiment's root seed by a stable label, so adding a new consumer never
//! perturbs existing streams and runs are exactly reproducible.

/// FNV-1a 64-bit hash — stable across platforms and Rust versions,
/// unlike `DefaultHasher`.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// splitmix64 finalizer — decorrelates seeds that differ in few bits.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// xoshiro256++ core: fast, 256-bit state, excellent statistical quality.
/// Implemented locally so the simulator's streams are frozen by this file,
/// not by an external crate's version bumps.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Expand a 64-bit seed into the full state with splitmix64 (the
    /// reference seeding procedure; guarantees a non-zero state).
    fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            z = z.wrapping_add(0x9e3779b97f4a7c15);
            *slot = splitmix(z);
        }
        Xoshiro256 { s }
    }

    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)` via 128-bit widening multiply (Lemire). The bias
    /// without a rejection step is < n/2^64 — irrelevant at simulation
    /// scales and branch-free, keeping draws cheap and deterministic.
    fn bounded(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A seeded RNG that can spawn independent, reproducible substreams.
pub struct DetRng {
    seed: u64,
    rng: Xoshiro256,
}

impl DetRng {
    /// Root RNG for a run.
    pub fn new(seed: u64) -> Self {
        DetRng {
            seed,
            rng: Xoshiro256::seed_from_u64(splitmix(seed)),
        }
    }

    /// The seed this stream was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fork a named substream. Forking does not consume state from `self`,
    /// so fork order is irrelevant to determinism.
    pub fn fork(&self, label: &str) -> DetRng {
        DetRng::new(splitmix(self.seed ^ fnv1a(label.as_bytes())))
    }

    /// Fork an indexed substream (e.g. one per rank).
    pub fn fork_idx(&self, idx: u64) -> DetRng {
        DetRng::new(splitmix(
            self.seed ^ splitmix(idx.wrapping_add(0x5bf0_3635)),
        ))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.rng.bounded(hi - lo)
    }

    /// Uniform usize in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.rng.bounded(n as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.rng.next_f64() < p
        }
    }

    /// Exponentially distributed sample with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u: f64 = self.rng.next_f64();
        // Guard against ln(0).
        -mean * (1.0 - u).max(f64::MIN_POSITIVE).ln()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid range");
        lo + (hi - lo) * self.f64()
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        let u1: f64 = self.rng.next_f64().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std * z
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.rng.bounded(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.range_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.range_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_independent_of_parent_state() {
        let mut a = DetRng::new(7);
        let fork_before = a.fork("straggler");
        let _ = a.f64(); // consume parent state
        let fork_after = a.fork("straggler");
        let mut x = fork_before;
        let mut y = fork_after;
        for _ in 0..10 {
            assert_eq!(x.range_u64(0, 1000), y.range_u64(0, 1000));
        }
    }

    #[test]
    fn forks_with_different_labels_differ() {
        let root = DetRng::new(7);
        let mut a = root.fork("alpha");
        let mut b = root.fork("beta");
        let va: Vec<u64> = (0..16).map(|_| a.range_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.range_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn indexed_forks_differ() {
        let root = DetRng::new(7);
        let mut a = root.fork_idx(0);
        let mut b = root.fork_idx(1);
        let va: Vec<u64> = (0..16).map(|_| a.range_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.range_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = DetRng::new(99);
        let n = 20_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.1,
            "sample mean {sample_mean}"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = DetRng::new(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely to be identity
    }
}
