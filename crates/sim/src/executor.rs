//! The deterministic single-threaded async executor at the heart of the DES.
//!
//! Simulated processes (MPI ranks, protocol daemons, the `mpirun`
//! controller…) are ordinary Rust futures. The executor interleaves them
//! cooperatively and advances a virtual clock: when no task is runnable, the
//! clock jumps to the next scheduled timer. There is no real-time blocking
//! anywhere, so a full 128-rank run finishes in milliseconds of wall time.
//!
//! Determinism: tasks are polled in FIFO wake order, timers fire in
//! `(deadline, sequence-number)` order, and all randomness is drawn from a
//! seeded [`crate::rng::DetRng`]. Two runs with the same seed produce
//! identical event schedules.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::time::{SimDuration, SimTime};

/// Identifies a spawned task. Stable for the lifetime of the task.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TaskId {
    slot: usize,
    generation: u64,
}

/// Error returned by [`Sim::run`] when no task can make progress but live
/// tasks remain — i.e. every remaining task waits on an event that will
/// never fire. The names of the stuck tasks are reported to make protocol
/// deadlocks debuggable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deadlock {
    /// Simulated time at which the simulation stalled.
    pub at: SimTime,
    /// Names of the tasks that were still alive.
    pub stuck: Vec<String>,
}

impl fmt::Display for Deadlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation deadlocked at {} with {} stuck task(s): ",
            self.at,
            self.stuck.len()
        )?;
        for (i, name) in self.stuck.iter().take(8).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}")?;
        }
        if self.stuck.len() > 8 {
            write!(f, ", …")?;
        }
        Ok(())
    }
}

impl std::error::Error for Deadlock {}

/// Outcome of [`Sim::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// All tasks completed before the horizon.
    AllDone,
    /// The horizon was reached with tasks still alive.
    HorizonReached,
}

struct TaskWaker {
    slot: usize,
    generation: u64,
    queued: AtomicBool,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            self.ready.push(TaskId {
                slot: self.slot,
                generation: self.generation,
            });
        }
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            self.ready.push(TaskId {
                slot: self.slot,
                generation: self.generation,
            });
        }
    }
}

/// FIFO of woken tasks. `Send + Sync` so it can live inside standard
/// `Waker`s even though the simulation itself is single-threaded.
struct ReadyQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

impl ReadyQueue {
    fn push(&self, id: TaskId) {
        self.queue
            .lock()
            .expect("ready queue poisoned")
            .push_back(id);
    }

    fn pop(&self) -> Option<TaskId> {
        self.queue.lock().expect("ready queue poisoned").pop_front()
    }
}

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

struct Task {
    future: Option<BoxFuture>,
    name: Rc<str>,
    waker: Arc<TaskWaker>,
    generation: u64,
}

struct Timer {
    at: SimTime,
    seq: u64,
    waker: Waker,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Core {
    now: SimTime,
    timer_seq: u64,
    timers: BinaryHeap<Reverse<Timer>>,
    tasks: Vec<Option<Task>>,
    free_slots: Vec<usize>,
    live_tasks: usize,
    next_generation: u64,
    /// Total number of task polls, for diagnostics.
    polls: u64,
}

/// A cheaply-cloneable handle to the simulation. All spawned futures
/// typically capture one.
#[derive(Clone)]
pub struct Sim {
    core: Rc<RefCell<Core>>,
    ready: Arc<ReadyQueue>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation with the clock at zero.
    pub fn new() -> Self {
        Sim {
            core: Rc::new(RefCell::new(Core {
                now: SimTime::ZERO,
                timer_seq: 0,
                timers: BinaryHeap::new(),
                tasks: Vec::new(),
                free_slots: Vec::new(),
                live_tasks: 0,
                next_generation: 0,
                polls: 0,
            })),
            ready: Arc::new(ReadyQueue {
                queue: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.borrow().now
    }

    /// Number of tasks that have not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.core.borrow().live_tasks
    }

    /// Total number of task polls performed so far (diagnostic).
    pub fn poll_count(&self) -> u64 {
        self.core.borrow().polls
    }

    /// Spawn a named task. The name appears in deadlock reports.
    pub fn spawn_named<F>(&self, name: impl Into<String>, fut: F) -> TaskId
    where
        F: Future<Output = ()> + 'static,
    {
        let mut core = self.core.borrow_mut();
        let generation = core.next_generation;
        core.next_generation += 1;
        let slot = core.free_slots.pop().unwrap_or_else(|| {
            core.tasks.push(None);
            core.tasks.len() - 1
        });
        let waker = Arc::new(TaskWaker {
            slot,
            generation,
            queued: AtomicBool::new(true), // spawned tasks start on the ready queue
            ready: Arc::clone(&self.ready),
        });
        core.tasks[slot] = Some(Task {
            future: Some(Box::pin(fut)),
            name: Rc::from(name.into()),
            waker: Arc::clone(&waker),
            generation,
        });
        core.live_tasks += 1;
        drop(core);
        let id = TaskId { slot, generation };
        self.ready.push(id);
        id
    }

    /// Spawn an anonymous task.
    pub fn spawn<F>(&self, fut: F) -> TaskId
    where
        F: Future<Output = ()> + 'static,
    {
        self.spawn_named("task", fut)
    }

    /// Schedule `waker` to be invoked at absolute time `at`.
    /// This is the primitive all timed futures are built on.
    pub fn schedule_waker(&self, at: SimTime, waker: Waker) {
        let mut core = self.core.borrow_mut();
        assert!(
            at >= core.now,
            "cannot schedule a waker in the past ({} < {})",
            at,
            core.now
        );
        let seq = core.timer_seq;
        core.timer_seq += 1;
        core.timers.push(Reverse(Timer { at, seq, waker }));
    }

    /// A future that completes at absolute simulated time `deadline`.
    /// Completes immediately if `deadline` has already passed.
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            registered: false,
        }
    }

    /// A future that completes after `dur` of simulated time.
    pub fn sleep(&self, dur: SimDuration) -> Sleep {
        let deadline = self.now() + dur;
        self.sleep_until(deadline)
    }

    /// Yield to other ready tasks without advancing time.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Run until all tasks complete.
    ///
    /// # Errors
    /// Returns [`Deadlock`] if live tasks remain but no timer or wake can
    /// ever run them again.
    pub fn run(&self) -> Result<(), Deadlock> {
        match self.run_inner(SimTime::MAX) {
            Ok(_) => Ok(()),
            Err(d) => Err(d),
        }
    }

    /// Run until all tasks complete or the clock would pass `horizon`.
    /// Timers at exactly `horizon` still fire.
    ///
    /// # Errors
    /// Returns [`Deadlock`] on a stall before the horizon.
    pub fn run_until(&self, horizon: SimTime) -> Result<RunOutcome, Deadlock> {
        self.run_inner(horizon)
    }

    fn run_inner(&self, horizon: SimTime) -> Result<RunOutcome, Deadlock> {
        loop {
            // Drain the ready queue.
            while let Some(id) = self.ready.pop() {
                self.poll_task(id);
            }
            let mut core = self.core.borrow_mut();
            if core.live_tasks == 0 {
                return Ok(RunOutcome::AllDone);
            }
            // No ready tasks: advance the clock to the next timer.
            match core.timers.peek() {
                Some(Reverse(t)) if t.at <= horizon => {
                    let at = t.at;
                    core.now = at;
                    // Fire every timer scheduled for this instant.
                    let mut fired = Vec::new();
                    while let Some(Reverse(t)) = core.timers.peek() {
                        if t.at != at {
                            break;
                        }
                        fired.push(core.timers.pop().unwrap().0.waker);
                    }
                    drop(core);
                    for w in fired {
                        w.wake();
                    }
                }
                Some(_) => return Ok(RunOutcome::HorizonReached),
                None => {
                    let stuck = core
                        .tasks
                        .iter()
                        .flatten()
                        .filter(|t| t.future.is_some())
                        .map(|t| t.name.to_string())
                        .collect();
                    return Err(Deadlock {
                        at: core.now,
                        stuck,
                    });
                }
            }
        }
    }

    fn poll_task(&self, id: TaskId) {
        // Take the future out of the slab so the core is not borrowed
        // while the task body runs (the body will re-borrow it).
        let (mut fut, waker) = {
            let mut core = self.core.borrow_mut();
            let slot = match core.tasks.get_mut(id.slot) {
                Some(Some(task)) if task.generation == id.generation => task,
                _ => return, // task already finished; stale wake
            };
            slot.waker.queued.store(false, Ordering::Release);
            match slot.future.take() {
                Some(f) => (f, Arc::clone(&slot.waker)),
                None => return,
            }
        };
        {
            let mut core = self.core.borrow_mut();
            core.polls += 1;
        }
        let std_waker = Waker::from(Arc::clone(&waker));
        let mut cx = Context::from_waker(&std_waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                let mut core = self.core.borrow_mut();
                if let Some(Some(task)) = core.tasks.get_mut(id.slot) {
                    if task.generation == id.generation {
                        core.tasks[id.slot] = None;
                        core.free_slots.push(id.slot);
                        core.live_tasks -= 1;
                    }
                }
            }
            Poll::Pending => {
                let mut core = self.core.borrow_mut();
                if let Some(Some(task)) = core.tasks.get_mut(id.slot) {
                    if task.generation == id.generation {
                        task.future = Some(fut);
                    }
                }
            }
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            self.sim.schedule_waker(self.deadline, cx.waker().clone());
        }
        Poll::Pending
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn empty_sim_finishes_immediately() {
        let sim = Sim::new();
        sim.run().unwrap();
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new();
        let observed = Rc::new(Cell::new(SimTime::ZERO));
        let obs = Rc::clone(&observed);
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_secs(5)).await;
            obs.set(s.now());
        });
        sim.run().unwrap();
        assert_eq!(observed.get(), SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn tasks_interleave_in_time_order() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (label, delay_ms) in [("c", 30u64), ("a", 10), ("b", 20)] {
            let s = sim.clone();
            let ord = Rc::clone(&order);
            sim.spawn(async move {
                s.sleep(SimDuration::from_millis(delay_ms)).await;
                ord.borrow_mut().push(label);
            });
        }
        sim.run().unwrap();
        assert_eq!(*order.borrow(), vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_timers_fire_in_schedule_order() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for label in 0..10 {
            let s = sim.clone();
            let ord = Rc::clone(&order);
            sim.spawn(async move {
                s.sleep(SimDuration::from_millis(5)).await;
                ord.borrow_mut().push(label);
            });
        }
        sim.run().unwrap();
        assert_eq!(*order.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn yield_now_reschedules_without_time() {
        let sim = Sim::new();
        let count = Rc::new(Cell::new(0));
        let c = Rc::clone(&count);
        let s = sim.clone();
        sim.spawn(async move {
            for _ in 0..100 {
                s.yield_now().await;
                c.set(c.get() + 1);
            }
        });
        sim.run().unwrap();
        assert_eq!(count.get(), 100);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn deadlock_is_reported_with_names() {
        let sim = Sim::new();
        sim.spawn_named("waits-forever", std::future::pending::<()>());
        let err = sim.run().unwrap_err();
        assert_eq!(err.stuck, vec!["waits-forever".to_string()]);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_secs(100)).await;
        });
        let outcome = sim.run_until(SimTime::from_secs(10)).unwrap();
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(sim.live_tasks(), 1);
        // Resuming without a horizon finishes the task.
        sim.run().unwrap();
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    #[test]
    fn nested_spawns_run() {
        let sim = Sim::new();
        let hits = Rc::new(Cell::new(0));
        let s = sim.clone();
        let h = Rc::clone(&hits);
        sim.spawn(async move {
            for i in 0..5 {
                let s2 = s.clone();
                let h2 = Rc::clone(&h);
                s.spawn(async move {
                    s2.sleep(SimDuration::from_millis(i)).await;
                    h2.set(h2.get() + 1);
                });
            }
        });
        sim.run().unwrap();
        assert_eq!(hits.get(), 5);
    }

    #[test]
    fn sleep_zero_completes_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        sim.spawn(async move {
            s.sleep(SimDuration::ZERO).await;
            d.set(true);
        });
        sim.run().unwrap();
        assert!(done.get());
    }

    #[test]
    fn task_slots_are_reused_safely() {
        let sim = Sim::new();
        // First generation of tasks.
        for _ in 0..4 {
            sim.spawn(async {});
        }
        sim.run().unwrap();
        // Second generation reuses slots; stale wakes must not corrupt them.
        let count = Rc::new(Cell::new(0));
        for _ in 0..4 {
            let s = sim.clone();
            let c = Rc::clone(&count);
            sim.spawn(async move {
                s.sleep(SimDuration::from_millis(1)).await;
                c.set(c.get() + 1);
            });
        }
        sim.run().unwrap();
        assert_eq!(count.get(), 4);
    }
}
