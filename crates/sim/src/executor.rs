//! The deterministic sharded async executor at the heart of the DES.
//!
//! Simulated processes (MPI ranks, protocol daemons, the `mpirun`
//! controller…) are ordinary Rust futures. The executor interleaves them
//! cooperatively and advances a virtual clock: when no task is runnable, the
//! clock jumps to the next scheduled event. There is no real-time blocking
//! anywhere, so a full 128-rank run finishes in milliseconds of wall time.
//!
//! Pending events are partitioned into per-group *shards* (see
//! [`crate::shard`]), each with its own timer heap. A conservative-window
//! merge picks the next instant: because every event carries a sequence
//! number from one global counter, the merged order is the exact total
//! order `(deadline, sequence)` no matter how many shards exist — shard
//! count is a layout choice, not a semantic one.
//!
//! Determinism: tasks are polled in FIFO wake order, events fire in
//! `(deadline, sequence-number)` order, and all randomness is drawn from a
//! seeded [`crate::rng::DetRng`]. Two runs with the same seed produce
//! identical event schedules, at any shard count.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::shard::{EventKind, EventSlot, HeapEntry, Shard, SimStats};
use crate::time::{SimDuration, SimTime};

/// Identifies a spawned task. Stable for the lifetime of the task.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TaskId {
    slot: usize,
    generation: u64,
}

/// Error returned by [`Sim::run`] when no task can make progress but live
/// tasks remain — i.e. every remaining task waits on an event that will
/// never fire. The names of the stuck tasks are reported to make protocol
/// deadlocks debuggable; with a sharded executor the shard of each stuck
/// task is reported too, so a stall that looks like a cross-shard window
/// that never closed can be localized to its group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deadlock {
    /// Simulated time at which the simulation stalled.
    pub at: SimTime,
    /// Names of the tasks that were still alive.
    pub stuck: Vec<String>,
    /// Shard index of each stuck task, parallel to `stuck`.
    pub stuck_shards: Vec<u32>,
}

impl fmt::Display for Deadlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation deadlocked at {} with {} stuck task(s): ",
            self.at,
            self.stuck.len()
        )?;
        let multi_shard = self.stuck_shards.iter().any(|&s| s != 0);
        for (i, name) in self.stuck.iter().take(8).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}")?;
            if multi_shard {
                if let Some(s) = self.stuck_shards.get(i) {
                    write!(f, "[shard {s}]")?;
                }
            }
        }
        if self.stuck.len() > 8 {
            write!(f, ", …")?;
        }
        if multi_shard {
            let mut shards: Vec<u32> = self.stuck_shards.clone();
            shards.sort_unstable();
            shards.dedup();
            write!(f, " (blocked across {} shard(s))", shards.len())?;
        }
        Ok(())
    }
}

impl std::error::Error for Deadlock {}

/// Outcome of [`Sim::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// All tasks completed before the horizon.
    AllDone,
    /// The horizon was reached with tasks still alive.
    HorizonReached,
}

/// Work item on the ready FIFO. Besides woken tasks, the FIFO carries the
/// two-step lifecycle of scheduled calls: `CallInit` assigns the global
/// sequence number at the FIFO position where the old task-per-message
/// scheme performed its first poll (and timer registration), and `CallRun`
/// runs the closure at the position where that task would have been polled
/// after its timer fired. This is what keeps same-instant ordering
/// bit-identical with the pre-shard executor.
#[derive(Clone, Copy, Debug)]
enum ReadyItem {
    Task(TaskId),
    CallInit(u32),
    CallRun(u32),
}

struct TaskWaker {
    slot: usize,
    generation: u64,
    queued: AtomicBool,
    ready: Arc<ReadyQueue>,
}

impl TaskWaker {
    fn enqueue(&self) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            self.ready.push(ReadyItem::Task(TaskId {
                slot: self.slot,
                generation: self.generation,
            }));
        }
    }
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.enqueue();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.enqueue();
    }
}

/// FIFO of runnable work. `Send + Sync` so it can live inside standard
/// `Waker`s even though the simulation itself is single-threaded.
struct ReadyQueue {
    queue: Mutex<VecDeque<ReadyItem>>,
}

impl ReadyQueue {
    fn push(&self, item: ReadyItem) {
        self.queue
            .lock()
            .expect("ready queue poisoned")
            .push_back(item);
    }

    fn pop(&self) -> Option<ReadyItem> {
        self.queue.lock().expect("ready queue poisoned").pop_front()
    }
}

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

struct Task {
    future: Option<BoxFuture>,
    name: Rc<str>,
    waker: Arc<TaskWaker>,
    generation: u64,
    /// Shard this task's timers are attributed to.
    shard: u32,
}

/// What to do for an event popped off a shard heap. Built in global
/// sequence order under the core borrow, executed after it is released.
enum FireOp {
    Wake(Waker),
    Run(u32),
}

struct Core {
    now: SimTime,
    /// Single global schedule counter — the tiebreak of the total order.
    event_seq: u64,
    shards: Vec<Shard>,
    /// Event arena; heaps and the ready FIFO refer to slots by index.
    events: Vec<EventSlot>,
    free_events: Vec<u32>,
    tasks: Vec<Option<Task>>,
    free_slots: Vec<usize>,
    live_tasks: usize,
    /// Calls scheduled but not yet run (they keep the simulation alive the
    /// way the in-flight tasks they replace did).
    pending_calls: usize,
    next_generation: u64,
    /// Shard of the task/call currently being polled; spawns and timer
    /// registrations inherit it.
    current_shard: u32,
    polls: u64,
    events_fired: u64,
    calls_run: u64,
    merges: u64,
    window_batches: u64,
    window_events: u64,
    /// Reusable scratch for the fire loop.
    fire_scratch: Vec<FireOp>,
    batch_scratch: Vec<HeapEntry>,
}

impl Core {
    fn alloc_event(&mut self, ev: EventSlot) -> u32 {
        match self.free_events.pop() {
            Some(slot) => {
                self.events[slot as usize] = ev;
                slot
            }
            None => {
                self.events.push(ev);
                (self.events.len() - 1) as u32
            }
        }
    }

    /// Convert a popped heap entry into its fire op. Wake slots are freed
    /// here; Call slots stay allocated until their `CallRun` drains.
    fn op_for(&mut self, entry: HeapEntry) -> FireOp {
        let is_wake = matches!(
            self.events.get(entry.slot as usize).map(|e| &e.kind),
            Some(Some(EventKind::Wake(_)))
        );
        if is_wake {
            if let Some(ev) = self.events.get_mut(entry.slot as usize) {
                if let Some(EventKind::Wake(w)) = ev.kind.take() {
                    self.free_events.push(entry.slot);
                    return FireOp::Wake(w);
                }
            }
        }
        FireOp::Run(entry.slot)
    }
}

/// A cheaply-cloneable handle to the simulation. All spawned futures
/// typically capture one.
#[derive(Clone)]
pub struct Sim {
    core: Rc<RefCell<Core>>,
    ready: Arc<ReadyQueue>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty single-shard simulation with the clock at zero.
    pub fn new() -> Self {
        Self::with_shards(1)
    }

    /// Create an empty simulation with `shards` event shards. The shard
    /// count never affects the event order — only how pending events are
    /// partitioned — so any count is digest-equivalent to one shard.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        Sim {
            core: Rc::new(RefCell::new(Core {
                now: SimTime::ZERO,
                event_seq: 0,
                shards: (0..shards).map(|_| Shard::new()).collect(),
                events: Vec::new(),
                free_events: Vec::new(),
                tasks: Vec::new(),
                free_slots: Vec::new(),
                live_tasks: 0,
                pending_calls: 0,
                next_generation: 0,
                current_shard: 0,
                polls: 0,
                events_fired: 0,
                calls_run: 0,
                merges: 0,
                window_batches: 0,
                window_events: 0,
                fire_scratch: Vec::new(),
                batch_scratch: Vec::new(),
            })),
            ready: Arc::new(ReadyQueue {
                queue: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.borrow().now
    }

    /// Number of event shards.
    pub fn shard_count(&self) -> usize {
        self.core.borrow().shards.len()
    }

    /// Number of tasks that have not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.core.borrow().live_tasks
    }

    /// Total number of task polls performed so far (diagnostic).
    pub fn poll_count(&self) -> u64 {
        self.core.borrow().polls
    }

    /// Number of events currently waiting in the shard heaps.
    pub fn pending_events(&self) -> usize {
        self.core.borrow().shards.iter().map(|s| s.len()).sum()
    }

    /// Snapshot of kernel counters (polls, fired events, merge behavior).
    pub fn stats(&self) -> SimStats {
        let core = self.core.borrow();
        SimStats {
            shard_count: core.shards.len(),
            polls: core.polls,
            events_fired: core.events_fired,
            calls_run: core.calls_run,
            merges: core.merges,
            window_batches: core.window_batches,
            window_events: core.window_events,
        }
    }

    /// Spawn a named task on the shard of the current task (shard 0 when
    /// spawned from outside the executor). The name appears in deadlock
    /// reports.
    pub fn spawn_named<F>(&self, name: impl Into<String>, fut: F) -> TaskId
    where
        F: Future<Output = ()> + 'static,
    {
        let shard = self.core.borrow().current_shard;
        self.spawn_on_shard(shard, name, fut)
    }

    /// Spawn a named task attributed to `shard` (taken modulo the shard
    /// count). Attribution decides which heap the task's timers wait in;
    /// it never affects ordering.
    pub fn spawn_named_on<F>(&self, shard: usize, name: impl Into<String>, fut: F) -> TaskId
    where
        F: Future<Output = ()> + 'static,
    {
        let count = self.core.borrow().shards.len();
        self.spawn_on_shard((shard % count) as u32, name, fut)
    }

    fn spawn_on_shard<F>(&self, shard: u32, name: impl Into<String>, fut: F) -> TaskId
    where
        F: Future<Output = ()> + 'static,
    {
        let mut core = self.core.borrow_mut();
        let shard = shard % core.shards.len() as u32;
        let generation = core.next_generation;
        core.next_generation += 1;
        let slot = core.free_slots.pop().unwrap_or_else(|| {
            core.tasks.push(None);
            core.tasks.len() - 1
        });
        let waker = Arc::new(TaskWaker {
            slot,
            generation,
            queued: AtomicBool::new(true), // spawned tasks start on the ready queue
            ready: Arc::clone(&self.ready),
        });
        core.tasks[slot] = Some(Task {
            future: Some(Box::pin(fut)),
            name: Rc::from(name.into()),
            waker: Arc::clone(&waker),
            generation,
            shard,
        });
        core.live_tasks += 1;
        drop(core);
        let id = TaskId { slot, generation };
        self.ready.push(ReadyItem::Task(id));
        id
    }

    /// Spawn an anonymous task.
    pub fn spawn<F>(&self, fut: F) -> TaskId
    where
        F: Future<Output = ()> + 'static,
    {
        self.spawn_named("task", fut)
    }

    /// Schedule `waker` to be invoked at absolute time `at`.
    /// This is the primitive all timed futures are built on.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past.
    pub fn schedule_waker(&self, at: SimTime, waker: Waker) {
        let mut core = self.core.borrow_mut();
        assert!(
            at >= core.now,
            "cannot schedule a waker in the past ({} < {})",
            at,
            core.now
        );
        let seq = core.event_seq;
        core.event_seq += 1;
        let shard = core.current_shard;
        let slot = core.alloc_event(EventSlot {
            at,
            shard,
            kind: Some(EventKind::Wake(waker)),
        });
        core.shards[shard as usize].push(HeapEntry { at, seq, slot });
    }

    /// Schedule `f` to run on the executor at absolute time `at`,
    /// attributed to the current shard. This is the arena-allocated
    /// replacement for spawning a task that sleeps and then acts: no
    /// future, no task slot, no waker — one event slot and one closure.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past.
    pub fn schedule_call(&self, at: SimTime, f: impl FnOnce() + 'static) {
        let shard = self.core.borrow().current_shard;
        self.schedule_call_on(shard as usize, at, f);
    }

    /// Schedule `f` to run at `at`, attributed to `shard` (taken modulo
    /// the shard count). Cross-shard message deliveries use this with the
    /// destination's shard.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past.
    pub fn schedule_call_on(&self, shard: usize, at: SimTime, f: impl FnOnce() + 'static) {
        let mut core = self.core.borrow_mut();
        assert!(
            at >= core.now,
            "cannot schedule a call in the past ({} < {})",
            at,
            core.now
        );
        let shard = (shard % core.shards.len()) as u32;
        let slot = core.alloc_event(EventSlot {
            at,
            shard,
            kind: Some(EventKind::Call(Box::new(f))),
        });
        core.pending_calls += 1;
        drop(core);
        // The sequence number is assigned when this drains — the same FIFO
        // position where the task-per-message scheme registered its timer.
        self.ready.push(ReadyItem::CallInit(slot));
    }

    /// A future that completes at absolute simulated time `deadline`.
    /// Completes immediately if `deadline` has already passed.
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            registered: false,
        }
    }

    /// A future that completes after `dur` of simulated time.
    pub fn sleep(&self, dur: SimDuration) -> Sleep {
        let deadline = self.now() + dur;
        self.sleep_until(deadline)
    }

    /// Yield to other ready tasks without advancing time.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Run until all tasks complete.
    ///
    /// # Errors
    /// Returns [`Deadlock`] if live tasks remain but no timer or wake can
    /// ever run them again.
    pub fn run(&self) -> Result<(), Deadlock> {
        match self.run_inner(SimTime::MAX) {
            Ok(_) => Ok(()),
            Err(d) => Err(d),
        }
    }

    /// Run until all tasks complete or the clock would pass `horizon`.
    /// Timers at exactly `horizon` still fire.
    ///
    /// # Errors
    /// Returns [`Deadlock`] on a stall before the horizon.
    pub fn run_until(&self, horizon: SimTime) -> Result<RunOutcome, Deadlock> {
        self.run_inner(horizon)
    }

    fn run_inner(&self, horizon: SimTime) -> Result<RunOutcome, Deadlock> {
        loop {
            // Drain the ready FIFO.
            while let Some(item) = self.ready.pop() {
                match item {
                    ReadyItem::Task(id) => self.poll_task(id),
                    ReadyItem::CallInit(slot) => self.init_call(slot),
                    ReadyItem::CallRun(slot) => self.run_call(slot),
                }
            }
            let mut core = self.core.borrow_mut();
            if core.live_tasks == 0 && core.pending_calls == 0 {
                return Ok(RunOutcome::AllDone);
            }
            // No runnable work: merge the shard heads. The winner is the
            // global minimum `(at, seq)`; `other_at` tracks the earliest
            // deadline in any *other* shard, which decides whether the
            // winning instant can be drained from one shard alone.
            let mut best: Option<(SimTime, u64, usize)> = None;
            let mut other_at: Option<SimTime> = None;
            for i in 0..core.shards.len() {
                if let Some((at, seq)) = core.shards[i].head() {
                    match best {
                        None => best = Some((at, seq, i)),
                        Some((bat, bseq, _)) => {
                            if (at, seq) < (bat, bseq) {
                                other_at = Some(other_at.map_or(bat, |o| o.min(bat)));
                                best = Some((at, seq, i));
                            } else {
                                other_at = Some(other_at.map_or(at, |o| o.min(at)));
                            }
                        }
                    }
                }
            }
            match best {
                Some((at, _, shard)) if at <= horizon => {
                    core.now = at;
                    core.merges += 1;
                    let mut ops = std::mem::take(&mut core.fire_scratch);
                    ops.clear();
                    if other_at != Some(at) {
                        // Conservative-window fast path: every event at
                        // this instant lives in one shard, whose heap
                        // already yields them in sequence order.
                        while let Some(entry) = core.shards[shard].pop_at(at) {
                            let op = core.op_for(entry);
                            ops.push(op);
                        }
                    } else {
                        // Slow path: the instant spans shards; collect and
                        // restore the global sequence order explicitly.
                        core.window_batches += 1;
                        let mut batch = std::mem::take(&mut core.batch_scratch);
                        batch.clear();
                        for i in 0..core.shards.len() {
                            while let Some(entry) = core.shards[i].pop_at(at) {
                                batch.push(entry);
                            }
                        }
                        batch.sort_unstable_by_key(|e| e.seq);
                        core.window_events += batch.len() as u64;
                        for entry in batch.drain(..) {
                            let op = core.op_for(entry);
                            ops.push(op);
                        }
                        core.batch_scratch = batch;
                    }
                    core.events_fired += ops.len() as u64;
                    drop(core);
                    for op in ops.drain(..) {
                        match op {
                            FireOp::Wake(w) => w.wake(),
                            FireOp::Run(slot) => self.ready.push(ReadyItem::CallRun(slot)),
                        }
                    }
                    self.core.borrow_mut().fire_scratch = ops;
                }
                Some(_) => return Ok(RunOutcome::HorizonReached),
                None => {
                    // Live work but no pending event can ever fire. Calls
                    // always hold a heap entry once initialized (and the
                    // FIFO is drained), so this is a pure task deadlock.
                    let mut stuck = Vec::new();
                    let mut stuck_shards = Vec::new();
                    for t in core.tasks.iter().flatten() {
                        if t.future.is_some() {
                            stuck.push(t.name.to_string());
                            stuck_shards.push(t.shard);
                        }
                    }
                    return Err(Deadlock {
                        at: core.now,
                        stuck,
                        stuck_shards,
                    });
                }
            }
        }
    }

    /// Second half of `schedule_call`: assign the global sequence number
    /// and move the event into its shard heap.
    fn init_call(&self, slot: u32) {
        let mut core = self.core.borrow_mut();
        let (at, shard) = match core.events.get(slot as usize) {
            Some(ev) => (ev.at, ev.shard),
            None => return,
        };
        let seq = core.event_seq;
        core.event_seq += 1;
        core.shards[shard as usize].push(HeapEntry { at, seq, slot });
    }

    /// Final half of a scheduled call: take the closure, free the slot,
    /// run the closure with the core released.
    fn run_call(&self, slot: u32) {
        let f = {
            let mut core = self.core.borrow_mut();
            let taken = core
                .events
                .get_mut(slot as usize)
                .and_then(|e| e.kind.take());
            match taken {
                Some(EventKind::Call(f)) => {
                    let shard = core.events[slot as usize].shard;
                    core.free_events.push(slot);
                    core.pending_calls -= 1;
                    core.calls_run += 1;
                    core.current_shard = shard;
                    f
                }
                Some(EventKind::Wake(w)) => {
                    // Defensive: never produced by the fire loop.
                    core.free_events.push(slot);
                    drop(core);
                    w.wake();
                    return;
                }
                None => return,
            }
        };
        f();
    }

    fn poll_task(&self, id: TaskId) {
        // Take the future out of the slab so the core is not borrowed
        // while the task body runs (the body will re-borrow it).
        let (mut fut, waker) = {
            let mut core = self.core.borrow_mut();
            let slot = match core.tasks.get_mut(id.slot) {
                Some(Some(task)) if task.generation == id.generation => task,
                _ => return, // task already finished; stale wake
            };
            slot.waker.queued.store(false, Ordering::Release);
            let shard = slot.shard;
            match slot.future.take() {
                Some(f) => {
                    let pair = (f, Arc::clone(&slot.waker));
                    core.current_shard = shard;
                    core.polls += 1;
                    pair
                }
                None => return,
            }
        };
        let std_waker = Waker::from(Arc::clone(&waker));
        let mut cx = Context::from_waker(&std_waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                let mut core = self.core.borrow_mut();
                if let Some(Some(task)) = core.tasks.get_mut(id.slot) {
                    if task.generation == id.generation {
                        core.tasks[id.slot] = None;
                        core.free_slots.push(id.slot);
                        core.live_tasks -= 1;
                    }
                }
            }
            Poll::Pending => {
                let mut core = self.core.borrow_mut();
                if let Some(Some(task)) = core.tasks.get_mut(id.slot) {
                    if task.generation == id.generation {
                        task.future = Some(fut);
                    }
                }
            }
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            self.sim.schedule_waker(self.deadline, cx.waker().clone());
        }
        Poll::Pending
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn empty_sim_finishes_immediately() {
        let sim = Sim::new();
        sim.run().unwrap();
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new();
        let observed = Rc::new(Cell::new(SimTime::ZERO));
        let obs = Rc::clone(&observed);
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_secs(5)).await;
            obs.set(s.now());
        });
        sim.run().unwrap();
        assert_eq!(observed.get(), SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn tasks_interleave_in_time_order() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (label, delay_ms) in [("c", 30u64), ("a", 10), ("b", 20)] {
            let s = sim.clone();
            let ord = Rc::clone(&order);
            sim.spawn(async move {
                s.sleep(SimDuration::from_millis(delay_ms)).await;
                ord.borrow_mut().push(label);
            });
        }
        sim.run().unwrap();
        assert_eq!(*order.borrow(), vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_timers_fire_in_schedule_order() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for label in 0..10 {
            let s = sim.clone();
            let ord = Rc::clone(&order);
            sim.spawn(async move {
                s.sleep(SimDuration::from_millis(5)).await;
                ord.borrow_mut().push(label);
            });
        }
        sim.run().unwrap();
        assert_eq!(*order.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn simultaneous_timers_fire_in_schedule_order_across_shards() {
        // Same program as above, but each task parks its timer in a
        // different shard: the same-instant merge must restore the global
        // schedule order, not the per-shard one.
        let sim = Sim::with_shards(4);
        let order = Rc::new(RefCell::new(Vec::new()));
        for label in 0..10usize {
            let s = sim.clone();
            let ord = Rc::clone(&order);
            sim.spawn_named_on(label % 4, format!("t{label}"), async move {
                s.sleep(SimDuration::from_millis(5)).await;
                ord.borrow_mut().push(label);
            });
        }
        sim.run().unwrap();
        assert_eq!(*order.borrow(), (0..10).collect::<Vec<_>>());
        let stats = sim.stats();
        assert_eq!(stats.shard_count, 4);
        assert!(
            stats.window_batches >= 1,
            "same-instant merge should engage"
        );
    }

    #[test]
    fn shard_count_does_not_change_event_order() {
        // A mix of staggered and simultaneous timers spread over shards
        // must produce the identical firing order at every shard count.
        let run = |shards: usize| {
            let sim = Sim::with_shards(shards);
            let order = Rc::new(RefCell::new(Vec::new()));
            for label in 0..12usize {
                let s = sim.clone();
                let ord = Rc::clone(&order);
                sim.spawn_named_on(label % 5, format!("t{label}"), async move {
                    s.sleep(SimDuration::from_millis((label as u64 % 3) * 7))
                        .await;
                    ord.borrow_mut().push(label);
                    s.sleep(SimDuration::from_millis(11)).await;
                    ord.borrow_mut().push(100 + label);
                });
            }
            sim.run().unwrap();
            Rc::try_unwrap(order).unwrap().into_inner()
        };
        let base = run(1);
        assert_eq!(run(4), base);
        assert_eq!(run(16), base);
    }

    #[test]
    fn scheduled_calls_run_at_their_deadline() {
        let sim = Sim::new();
        let hits = Rc::new(RefCell::new(Vec::new()));
        let s = sim.clone();
        let h = Rc::clone(&hits);
        sim.spawn(async move {
            let at = s.now() + SimDuration::from_millis(5);
            let (s2, h2) = (s.clone(), Rc::clone(&h));
            s.schedule_call(at, move || h2.borrow_mut().push(s2.now()));
            s.sleep(SimDuration::from_millis(10)).await;
            h.borrow_mut().push(s.now());
        });
        sim.run().unwrap();
        assert_eq!(
            *hits.borrow(),
            vec![SimTime::from_millis(5), SimTime::from_millis(10)]
        );
        assert_eq!(sim.stats().calls_run, 1);
    }

    #[test]
    fn calls_and_sleeps_at_same_instant_keep_schedule_order() {
        // Interleave sleeps and scheduled calls with the same deadline:
        // they must fire in the order they were scheduled, across shards.
        let run = |shards: usize| {
            let sim = Sim::with_shards(shards);
            let order = Rc::new(RefCell::new(Vec::new()));
            for label in 0..8usize {
                let s = sim.clone();
                let ord = Rc::clone(&order);
                sim.spawn_named_on(label % 3, format!("t{label}"), async move {
                    let at = s.now() + SimDuration::from_millis(5);
                    if label % 2 == 0 {
                        let ord2 = Rc::clone(&ord);
                        s.schedule_call_on(label, at, move || ord2.borrow_mut().push(label));
                    } else {
                        s.sleep_until(at).await;
                        ord.borrow_mut().push(label);
                    }
                });
            }
            sim.run().unwrap();
            Rc::try_unwrap(order).unwrap().into_inner()
        };
        let base = run(1);
        assert_eq!(run(4), base);
        assert_eq!(run(16), base);
    }

    #[test]
    fn pending_calls_keep_the_sim_alive() {
        let sim = Sim::new();
        let done = Rc::new(Cell::new(false));
        let s = sim.clone();
        let d = Rc::clone(&done);
        sim.spawn(async move {
            let at = s.now() + SimDuration::from_secs(3);
            s.schedule_call(at, move || d.set(true));
            // Task completes immediately; the call alone must keep the
            // run loop going.
        });
        sim.run().unwrap();
        assert!(done.get());
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn yield_now_reschedules_without_time() {
        let sim = Sim::new();
        let count = Rc::new(Cell::new(0));
        let c = Rc::clone(&count);
        let s = sim.clone();
        sim.spawn(async move {
            for _ in 0..100 {
                s.yield_now().await;
                c.set(c.get() + 1);
            }
        });
        sim.run().unwrap();
        assert_eq!(count.get(), 100);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn deadlock_is_reported_with_names() {
        let sim = Sim::new();
        sim.spawn_named("waits-forever", std::future::pending::<()>());
        let err = sim.run().unwrap_err();
        assert_eq!(err.stuck, vec!["waits-forever".to_string()]);
    }

    #[test]
    fn multi_shard_deadlock_reports_blocked_shards() {
        // A quiescent multi-shard run must terminate with a deadlock
        // report naming the blocked tasks and their shards — not hang
        // waiting for a cross-shard window that never closes.
        let sim = Sim::with_shards(4);
        sim.spawn_named_on(1, "stuck-a", std::future::pending::<()>());
        sim.spawn_named_on(3, "stuck-b", std::future::pending::<()>());
        let err = sim.run().unwrap_err();
        assert_eq!(
            err.stuck,
            vec!["stuck-a".to_string(), "stuck-b".to_string()]
        );
        assert_eq!(err.stuck_shards, vec![1, 3]);
        let msg = err.to_string();
        assert!(msg.contains("stuck-a[shard 1]"), "got: {msg}");
        assert!(msg.contains("2 shard(s)"), "got: {msg}");
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_secs(100)).await;
        });
        let outcome = sim.run_until(SimTime::from_secs(10)).unwrap();
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(sim.live_tasks(), 1);
        // Resuming without a horizon finishes the task.
        sim.run().unwrap();
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    #[test]
    fn nested_spawns_run() {
        let sim = Sim::new();
        let hits = Rc::new(Cell::new(0));
        let s = sim.clone();
        let h = Rc::clone(&hits);
        sim.spawn(async move {
            for i in 0..5 {
                let s2 = s.clone();
                let h2 = Rc::clone(&h);
                s.spawn(async move {
                    s2.sleep(SimDuration::from_millis(i)).await;
                    h2.set(h2.get() + 1);
                });
            }
        });
        sim.run().unwrap();
        assert_eq!(hits.get(), 5);
    }

    #[test]
    fn sleep_zero_completes_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        sim.spawn(async move {
            s.sleep(SimDuration::ZERO).await;
            d.set(true);
        });
        sim.run().unwrap();
        assert!(done.get());
    }

    #[test]
    fn task_slots_are_reused_safely() {
        let sim = Sim::new();
        // First generation of tasks.
        for _ in 0..4 {
            sim.spawn(async {});
        }
        sim.run().unwrap();
        // Second generation reuses slots; stale wakes must not corrupt them.
        let count = Rc::new(Cell::new(0));
        for _ in 0..4 {
            let s = sim.clone();
            let c = Rc::clone(&count);
            sim.spawn(async move {
                s.sleep(SimDuration::from_millis(1)).await;
                c.set(c.get() + 1);
            });
        }
        sim.run().unwrap();
        assert_eq!(count.get(), 4);
    }

    #[test]
    fn event_slots_are_reused() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            for _ in 0..100 {
                s.sleep(SimDuration::from_millis(1)).await;
            }
        });
        sim.run().unwrap();
        // One live sleep at a time: the arena should stay tiny.
        assert!(sim.core.borrow().events.len() <= 2);
        assert_eq!(sim.stats().events_fired, 100);
    }
}
