//! Serially-shared resources: NIC links, disks, checkpoint servers.
//!
//! A [`FifoResource`] models a work-conserving server that processes
//! requests one at a time in reservation order. Reserving returns the
//! completion time; contention shows up naturally as queueing delay. This
//! is the building block for the Fast-Ethernet links and the NFS
//! checkpoint-server bottleneck in `gcr-net`.

use std::cell::RefCell;
use std::rc::Rc;

use crate::executor::Sim;
use crate::time::{SimDuration, SimTime};

struct Inner {
    name: String,
    next_free: SimTime,
    busy: SimDuration,
    ops: u64,
}

/// A FIFO single-server resource in simulated time.
#[derive(Clone)]
pub struct FifoResource {
    sim: Sim,
    inner: Rc<RefCell<Inner>>,
}

impl FifoResource {
    /// Create a resource that is free from t = 0.
    pub fn new(sim: &Sim, name: impl Into<String>) -> Self {
        FifoResource {
            sim: sim.clone(),
            inner: Rc::new(RefCell::new(Inner {
                name: name.into(),
                next_free: SimTime::ZERO,
                busy: SimDuration::ZERO,
                ops: 0,
            })),
        }
    }

    /// Reserve the server for `service` time starting as soon as possible,
    /// and return the completion instant. Does not wait — combine with
    /// [`Sim::sleep_until`] (or use [`FifoResource::access`]).
    pub fn reserve(&self, service: SimDuration) -> SimTime {
        self.reserve_from(self.sim.now(), service)
    }

    /// Reserve starting no earlier than `earliest` (used for pipelined
    /// receive-side links where data cannot arrive before the wire latency
    /// has elapsed).
    pub fn reserve_from(&self, earliest: SimTime, service: SimDuration) -> SimTime {
        let mut r = self.inner.borrow_mut();
        let start = r.next_free.max(earliest).max(self.sim.now());
        let done = start + service;
        r.next_free = done;
        r.busy += service;
        r.ops += 1;
        done
    }

    /// Reserve and wait until the work completes. Returns the completion time.
    pub async fn access(&self, service: SimDuration) -> SimTime {
        let done = self.reserve(service);
        self.sim.sleep_until(done).await;
        done
    }

    /// The earliest instant at which a new reservation could start.
    pub fn next_free(&self) -> SimTime {
        self.inner.borrow().next_free
    }

    /// Total busy time accumulated by reservations so far.
    pub fn busy_time(&self) -> SimDuration {
        self.inner.borrow().busy
    }

    /// Number of reservations made.
    pub fn ops(&self) -> u64 {
        self.inner.borrow().ops
    }

    /// Utilization in `[0, 1]` relative to the current simulated time
    /// (may exceed 1 if reservations extend past "now").
    pub fn utilization(&self) -> f64 {
        let now = self.sim.now();
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.inner.borrow().busy.as_secs_f64() / now.as_secs_f64()
    }

    /// The resource's diagnostic name.
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn uncontended_reservation_starts_now() {
        let sim = Sim::new();
        let r = FifoResource::new(&sim, "disk");
        let done = r.reserve(SimDuration::from_secs(2));
        assert_eq!(done, SimTime::from_secs(2));
        assert_eq!(r.ops(), 1);
    }

    #[test]
    fn contended_reservations_queue_fifo() {
        let sim = Sim::new();
        let r = FifoResource::new(&sim, "disk");
        let a = r.reserve(SimDuration::from_secs(1));
        let b = r.reserve(SimDuration::from_secs(1));
        let c = r.reserve(SimDuration::from_secs(1));
        assert_eq!(a, SimTime::from_secs(1));
        assert_eq!(b, SimTime::from_secs(2));
        assert_eq!(c, SimTime::from_secs(3));
        assert_eq!(r.busy_time(), SimDuration::from_secs(3));
    }

    #[test]
    fn reserve_from_respects_earliest() {
        let sim = Sim::new();
        let r = FifoResource::new(&sim, "rx-link");
        let done = r.reserve_from(SimTime::from_secs(10), SimDuration::from_secs(1));
        assert_eq!(done, SimTime::from_secs(11));
        // A second reservation with an earlier "earliest" still queues after.
        let done2 = r.reserve_from(SimTime::from_secs(5), SimDuration::from_secs(1));
        assert_eq!(done2, SimTime::from_secs(12));
    }

    #[test]
    fn access_waits_for_completion() {
        let sim = Sim::new();
        let r = FifoResource::new(&sim, "disk");
        let finished_at = Rc::new(Cell::new(SimTime::ZERO));
        for _ in 0..3 {
            let r = r.clone();
            let s = sim.clone();
            let f = Rc::clone(&finished_at);
            sim.spawn(async move {
                let done = r.access(SimDuration::from_secs(4)).await;
                assert_eq!(done, s.now());
                f.set(f.get().max(done));
            });
        }
        sim.run().unwrap();
        assert_eq!(finished_at.get(), SimTime::from_secs(12));
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let sim = Sim::new();
        let r = FifoResource::new(&sim, "disk");
        let r2 = r.clone();
        let s = sim.clone();
        sim.spawn(async move {
            r2.access(SimDuration::from_secs(1)).await;
            s.sleep(SimDuration::from_secs(1)).await;
        });
        sim.run().unwrap();
        assert!((r.utilization() - 0.5).abs() < 1e-9);
    }
}
