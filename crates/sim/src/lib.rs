//! # gcr-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the `gcr` reproduction of *"Scalable Group-based
//! Checkpoint/Restart for Large-Scale Message-passing Systems"* (IPDPS 2008).
//!
//! Simulated processes are async tasks driven by a single-threaded,
//! deterministic executor ([`Sim`]) over a nanosecond virtual clock
//! ([`SimTime`]). The crate also provides the synchronization primitives
//! ([`sync`]), zero-time channels ([`channel`]), FIFO-server resources
//! ([`resource::FifoResource`]) used to model NICs/disks, seeded random
//! substreams ([`rng::DetRng`]), and stats collectors ([`stats`]).
//!
//! ## Example
//! ```
//! use gcr_sim::{Sim, SimDuration};
//!
//! let sim = Sim::new();
//! let handle = sim.clone();
//! sim.spawn(async move {
//!     handle.sleep(SimDuration::from_secs(3)).await;
//!     assert_eq!(handle.now().as_secs_f64(), 3.0);
//! });
//! sim.run().unwrap();
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod executor;
pub mod future;
pub mod resource;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod sync;
pub mod time;

pub use executor::{Deadlock, RunOutcome, Sim, TaskId};
pub use rng::DetRng;
pub use shard::SimStats;
pub use time::{SimDuration, SimTime};
