//! Zero-simulated-time message channels between tasks.
//!
//! These carry values instantly within the simulation — they are plumbing,
//! not network. Anything that should cost time must go through the network
//! model in `gcr-net`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Error returned when sending on a channel whose receiver was dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// All senders are gone and the queue is drained.
    Disconnected,
}

struct ChanInner<T> {
    queue: VecDeque<T>,
    recv_waker: Option<Waker>,
    senders: usize,
    receiver_alive: bool,
}

/// Create an unbounded multi-producer single-consumer channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Rc::new(RefCell::new(ChanInner {
        queue: VecDeque::new(),
        recv_waker: None,
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            inner: Rc::clone(&inner),
        },
        Receiver { inner },
    )
}

/// Sending half of a [`channel`]. Cloneable.
pub struct Sender<T> {
    inner: Rc<RefCell<ChanInner<T>>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.borrow_mut().senders += 1;
        Sender {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut c = self.inner.borrow_mut();
        c.senders -= 1;
        if c.senders == 0 {
            if let Some(w) = c.recv_waker.take() {
                w.wake();
            }
        }
    }
}

impl<T> Sender<T> {
    /// Enqueue a value. Never blocks (the channel is unbounded).
    ///
    /// # Errors
    /// Returns the value back if the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut c = self.inner.borrow_mut();
        if !c.receiver_alive {
            return Err(SendError(value));
        }
        c.queue.push_back(value);
        if let Some(w) = c.recv_waker.take() {
            w.wake();
        }
        Ok(())
    }
}

/// Receiving half of a [`channel`].
pub struct Receiver<T> {
    inner: Rc<RefCell<ChanInner<T>>>,
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.borrow_mut().receiver_alive = false;
    }
}

impl<T> Receiver<T> {
    /// Await the next value; resolves to `None` once all senders are dropped
    /// and the queue is drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { rx: self }
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] if nothing is queued,
    /// [`TryRecvError::Disconnected`] if drained and all senders dropped.
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        let mut c = self.inner.borrow_mut();
        match c.queue.pop_front() {
            Some(v) => Ok(v),
            None if c.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().queue.is_empty()
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    rx: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut c = self.rx.inner.borrow_mut();
        match c.queue.pop_front() {
            Some(v) => Poll::Ready(Some(v)),
            None if c.senders == 0 => Poll::Ready(None),
            None => {
                c.recv_waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Oneshot
// ---------------------------------------------------------------------------

struct OneshotInner<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_alive: bool,
}

/// Create a single-value channel.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let inner = Rc::new(RefCell::new(OneshotInner {
        value: None,
        waker: None,
        sender_alive: true,
    }));
    (
        OneshotSender {
            inner: Rc::clone(&inner),
        },
        OneshotReceiver { inner },
    )
}

/// Sending half of a [`oneshot`] channel.
pub struct OneshotSender<T> {
    inner: Rc<RefCell<OneshotInner<T>>>,
}

impl<T> OneshotSender<T> {
    /// Deliver the value, waking the receiver.
    pub fn send(self, value: T) {
        let mut c = self.inner.borrow_mut();
        c.value = Some(value);
        c.sender_alive = false;
        if let Some(w) = c.waker.take() {
            w.wake();
        }
        // Skip Drop (it would mark sender dead again, harmlessly, but this
        // is clearer).
        drop(c);
        std::mem::forget(self);
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut c = self.inner.borrow_mut();
        c.sender_alive = false;
        if let Some(w) = c.waker.take() {
            w.wake();
        }
    }
}

/// Receiving half of a [`oneshot`] channel.
pub struct OneshotReceiver<T> {
    inner: Rc<RefCell<OneshotInner<T>>>,
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut c = self.inner.borrow_mut();
        if let Some(v) = c.value.take() {
            Poll::Ready(Some(v))
        } else if !c.sender_alive {
            Poll::Ready(None)
        } else {
            c.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::Cell;

    #[test]
    fn values_arrive_in_order() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<u32>();
        let got = Rc::new(RefCell::new(Vec::new()));
        {
            let g = Rc::clone(&got);
            sim.spawn(async move {
                while let Some(v) = rx.recv().await {
                    g.borrow_mut().push(v);
                }
            });
        }
        let s = sim.clone();
        sim.spawn(async move {
            for i in 0..5 {
                s.sleep(SimDuration::from_millis(1)).await;
                tx.send(i).unwrap();
            }
            // tx dropped here closes the channel
        });
        sim.run().unwrap();
        assert_eq!(*got.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_returns_none_when_senders_gone() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<u32>();
        drop(tx);
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        sim.spawn(async move {
            assert_eq!(rx.recv().await, None);
            d.set(true);
        });
        sim.run().unwrap();
        assert!(done.get());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn try_recv_reports_state() {
        let (tx, mut rx) = channel::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cloned_senders_all_feed_receiver() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<u32>();
        let total = Rc::new(Cell::new(0));
        {
            let t = Rc::clone(&total);
            sim.spawn(async move {
                while let Some(v) = rx.recv().await {
                    t.set(t.get() + v);
                }
            });
        }
        for i in 1..=3 {
            let tx = tx.clone();
            sim.spawn(async move {
                tx.send(i).unwrap();
            });
        }
        drop(tx);
        sim.run().unwrap();
        assert_eq!(total.get(), 6);
    }

    #[test]
    fn oneshot_delivers_value() {
        let sim = Sim::new();
        let (tx, rx) = oneshot::<&'static str>();
        let got = Rc::new(RefCell::new(None));
        {
            let g = Rc::clone(&got);
            sim.spawn(async move {
                *g.borrow_mut() = rx.await;
            });
        }
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_secs(2)).await;
            tx.send("hello");
        });
        sim.run().unwrap();
        assert_eq!(*got.borrow(), Some("hello"));
    }

    #[test]
    fn oneshot_dropped_sender_yields_none() {
        let sim = Sim::new();
        let (tx, rx) = oneshot::<u8>();
        drop(tx);
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        sim.spawn(async move {
            assert_eq!(rx.await, None);
            d.set(true);
        });
        sim.run().unwrap();
        assert!(done.get());
    }
}
