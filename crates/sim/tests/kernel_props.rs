//! Property-style tests of the DES kernel's ordering guarantees.
//!
//! Randomised inputs come from the deterministic [`DetRng`] so every case
//! is reproducible from its seed (no external property-test framework).

use std::cell::RefCell;
use std::rc::Rc;

use gcr_sim::resource::FifoResource;
use gcr_sim::{DetRng, Sim, SimDuration, SimTime};

fn vec_u64(rng: &mut DetRng, lo: u64, hi: u64, min_len: u64, max_len: u64) -> Vec<u64> {
    (0..rng.range_u64(min_len, max_len))
        .map(|_| rng.range_u64(lo, hi))
        .collect()
}

/// Tasks sleeping arbitrary durations wake exactly at their deadline
/// and fire in (deadline, spawn-order) order.
#[test]
fn timers_fire_in_deadline_then_spawn_order() {
    for case in 0..64u64 {
        let mut rng = DetRng::new(0x51B0_0001).fork_idx(case);
        let delays = vec_u64(&mut rng, 0, 10_000, 1, 50);
        let sim = Sim::new();
        // (observed wake time, requested deadline, spawn index)
        let fired: Rc<RefCell<Vec<(u64, u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let s = sim.clone();
            let f = Rc::clone(&fired);
            sim.spawn(async move {
                s.sleep(SimDuration::from_micros(d)).await;
                f.borrow_mut().push((s.now().as_nanos(), d, i));
            });
        }
        sim.run().unwrap();
        let fired = fired.borrow();
        assert_eq!(fired.len(), delays.len(), "case {case}");
        for &(woke_ns, d, _) in fired.iter() {
            assert_eq!(
                woke_ns,
                d * 1_000,
                "case {case}: woke at the exact deadline"
            );
        }
        // Firing order: by deadline, ties by spawn order.
        let observed: Vec<(u64, usize)> = fired.iter().map(|&(_, d, i)| (d, i)).collect();
        let mut sorted = observed.clone();
        sorted.sort();
        assert_eq!(observed, sorted, "case {case}");
    }
}

/// Sequential sleeps inside one task accumulate exactly.
#[test]
fn sequential_sleeps_accumulate() {
    for case in 0..64u64 {
        let mut rng = DetRng::new(0x51B0_0002).fork_idx(case);
        let steps = vec_u64(&mut rng, 1, 1_000, 1, 30);
        let sim = Sim::new();
        let total: u64 = steps.iter().sum();
        let s = sim.clone();
        sim.spawn(async move {
            for &d in &steps {
                s.sleep(SimDuration::from_micros(d)).await;
            }
        });
        sim.run().unwrap();
        assert_eq!(
            sim.now(),
            SimTime::ZERO + SimDuration::from_micros(total),
            "case {case}"
        );
    }
}

/// FIFO resources serve backlogged reservations contiguously and in
/// order (work conservation).
#[test]
fn fifo_resource_work_conserving() {
    for case in 0..64u64 {
        let mut rng = DetRng::new(0x51B0_0003).fork_idx(case);
        let services = vec_u64(&mut rng, 1, 500, 1, 40);
        let sim = Sim::new();
        let r = FifoResource::new(&sim, "r");
        let mut expected_end = 0u64;
        for &s in &services {
            expected_end += s;
            let done = r.reserve(SimDuration::from_micros(s));
            assert_eq!(
                done,
                SimTime::ZERO + SimDuration::from_micros(expected_end),
                "case {case}"
            );
        }
        assert_eq!(
            r.busy_time(),
            SimDuration::from_micros(expected_end),
            "case {case}"
        );
        assert_eq!(r.ops(), services.len() as u64, "case {case}");
    }
}

/// Determinism: two simulations with identical task structure produce
/// identical completion orders.
#[test]
fn identical_programs_identical_schedules() {
    for case in 0..64u64 {
        let mut rng = DetRng::new(0x51B0_0004).fork_idx(case);
        let delays = vec_u64(&mut rng, 0, 5_000, 1, 30);
        let run = |delays: &[u64]| -> Vec<usize> {
            let sim = Sim::new();
            let order: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
            for (i, &d) in delays.iter().enumerate() {
                let s = sim.clone();
                let o = Rc::clone(&order);
                sim.spawn(async move {
                    s.sleep(SimDuration::from_micros(d)).await;
                    s.yield_now().await;
                    o.borrow_mut().push(i);
                });
            }
            sim.run().unwrap();
            Rc::try_unwrap(order).unwrap().into_inner()
        };
        assert_eq!(run(&delays), run(&delays), "case {case}");
    }
}
