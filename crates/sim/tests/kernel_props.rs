//! Property tests of the DES kernel's ordering guarantees.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use gcr_sim::resource::FifoResource;
use gcr_sim::{Sim, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Tasks sleeping arbitrary durations wake exactly at their deadline
    /// and fire in (deadline, spawn-order) order.
    #[test]
    fn timers_fire_in_deadline_then_spawn_order(
        delays in prop::collection::vec(0u64..10_000, 1..50),
    ) {
        let sim = Sim::new();
        // (observed wake time, requested deadline, spawn index)
        let fired: Rc<RefCell<Vec<(u64, u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let s = sim.clone();
            let f = Rc::clone(&fired);
            sim.spawn(async move {
                s.sleep(SimDuration::from_micros(d)).await;
                f.borrow_mut().push((s.now().as_nanos(), d, i));
            });
        }
        sim.run().unwrap();
        let fired = fired.borrow();
        prop_assert_eq!(fired.len(), delays.len());
        for &(woke_ns, d, _) in fired.iter() {
            prop_assert_eq!(woke_ns, d * 1_000, "woke at the exact deadline");
        }
        // Firing order: by deadline, ties by spawn order.
        let observed: Vec<(u64, usize)> = fired.iter().map(|&(_, d, i)| (d, i)).collect();
        let mut sorted = observed.clone();
        sorted.sort();
        prop_assert_eq!(observed, sorted);
    }

    /// Sequential sleeps inside one task accumulate exactly.
    #[test]
    fn sequential_sleeps_accumulate(steps in prop::collection::vec(1u64..1_000, 1..30)) {
        let sim = Sim::new();
        let total: u64 = steps.iter().sum();
        let s = sim.clone();
        sim.spawn(async move {
            for &d in &steps {
                s.sleep(SimDuration::from_micros(d)).await;
            }
        });
        sim.run().unwrap();
        prop_assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_micros(total));
    }

    /// FIFO resources serve backlogged reservations contiguously and in
    /// order (work conservation).
    #[test]
    fn fifo_resource_work_conserving(services in prop::collection::vec(1u64..500, 1..40)) {
        let sim = Sim::new();
        let r = FifoResource::new(&sim, "r");
        let mut expected_end = 0u64;
        for &s in &services {
            expected_end += s;
            let done = r.reserve(SimDuration::from_micros(s));
            prop_assert_eq!(done, SimTime::ZERO + SimDuration::from_micros(expected_end));
        }
        prop_assert_eq!(r.busy_time(), SimDuration::from_micros(expected_end));
        prop_assert_eq!(r.ops(), services.len() as u64);
    }

    /// Determinism: two simulations with identical task structure produce
    /// identical completion orders.
    #[test]
    fn identical_programs_identical_schedules(
        delays in prop::collection::vec(0u64..5_000, 1..30),
    ) {
        let run = |delays: &[u64]| -> Vec<usize> {
            let sim = Sim::new();
            let order: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
            for (i, &d) in delays.iter().enumerate() {
                let s = sim.clone();
                let o = Rc::clone(&order);
                sim.spawn(async move {
                    s.sleep(SimDuration::from_micros(d)).await;
                    s.yield_now().await;
                    o.borrow_mut().push(i);
                });
            }
            sim.run().unwrap();
            Rc::try_unwrap(order).unwrap().into_inner()
        };
        prop_assert_eq!(run(&delays), run(&delays));
    }
}
